open Slx_history
open Slx_sim
open Slx_liveness
open Slx_objects
open Support

(* ------------------------------------------------------------------ *)
(* The register-built snapshot (Afek et al.).                          *)

let snapshot_factory () :
    (Snapshot_type.invocation, Snapshot_type.response) Runner.factory =
 fun ~n ->
  let s = Snapshot_alg.make ~n 0 in
  fun ~proc:_ inv ->
    match inv with
    | Snapshot_type.Update (i, v) ->
        Snapshot_alg.update s ~proc:i v;
        Snapshot_type.Ok
    | Snapshot_type.Scan ->
        Snapshot_type.View (Array.to_list (Snapshot_alg.scan s))

module Snapshot3 = (val Snapshot_type.make ~n:3)
module Snap_lin = Slx_safety.Linearizability.Make (Snapshot3)

(* Writers update their own slot with increasing values; scanners
   interleave. *)
let snapshot_workload : (Snapshot_type.invocation, Snapshot_type.response) Driver.workload =
  Driver.n_times 4 (fun p k ->
      if p = 3 || k mod 2 = 1 then Snapshot_type.Scan
      else Snapshot_type.Update (p, (p * 10) + k))

let run_snapshot ~seed =
  Runner.run ~n:3 ~factory:(snapshot_factory ())
    ~driver:(Driver.random ~seed ~workload:snapshot_workload ())
    ~max_steps:2000 ()

let test_snapshot_solo_semantics () =
  let r =
    Runner.run ~n:3 ~factory:(snapshot_factory ())
      ~driver:
        (Driver.solo 1
           ~workload:
             (Driver.n_times 3 (fun _ k ->
                  if k = 2 then Snapshot_type.Scan
                  else Snapshot_type.Update (1, k + 5))))
      ~max_steps:500 ()
  in
  let views =
    List.filter_map
      (fun e ->
        match Event.response e with
        | Some (Snapshot_type.View v) -> Some v
        | Some Snapshot_type.Ok | None -> None)
      (History.to_list r.Run_report.history)
  in
  check_bool "solo scan sees the last update" true (views = [ [ 6; 0; 0 ] ])

let test_snapshot_wait_free () =
  (* Every operation completes: no scan retries forever under any of
     these schedules. *)
  List.iter
    (fun seed ->
      let r = run_snapshot ~seed in
      check_bool
        (Printf.sprintf "all ops complete (seed %d)" seed)
        true
        (History.pending_procs r.Run_report.history = Proc.Set.empty
        && r.Run_report.stopped = `Quiescent))
    [ 1; 2; 3; 4 ]

let test_snapshot_linearizable () =
  List.iter
    (fun seed ->
      let r = run_snapshot ~seed in
      check_bool
        (Printf.sprintf "linearizable (seed %d)" seed)
        true
        (Snap_lin.check r.Run_report.history))
    [ 1; 2; 3; 4; 5; 6 ]

let prop_snapshot_linearizable =
  QCheck2.Test.make ~name:"register-built snapshot is linearizable" ~count:12
    QCheck2.Gen.(int_range 0 1000)
    (fun seed -> Snap_lin.check (run_snapshot ~seed).Run_report.history)

(* ------------------------------------------------------------------ *)
(* The Treiber stack.                                                  *)

module Stack_lin = Slx_safety.Linearizability.Make (Stack_type.Self)

let stack_workload : (Stack_type.invocation, Stack_type.response) Driver.workload =
  Driver.n_times 4 (fun p k ->
      if k mod 2 = 0 then Stack_type.Push ((p * 100) + k) else Stack_type.Pop)

let run_stack ~seed ~n =
  Runner.run ~n ~factory:(Treiber_stack.factory ())
    ~driver:(Driver.random ~seed ~workload:stack_workload ())
    ~max_steps:600 ()

let test_stack_sequential () =
  let r =
    Runner.run ~n:1 ~factory:(Treiber_stack.factory ())
      ~driver:
        (Driver.solo 1
           ~workload:
             (Driver.n_times 4 (fun _ k ->
                  match k with
                  | 0 -> Stack_type.Push 1
                  | 1 -> Stack_type.Push 2
                  | 2 -> Stack_type.Pop
                  | _ -> Stack_type.Pop)))
      ~max_steps:200 ()
  in
  let responses = History.responses_of r.Run_report.history 1 in
  check_bool "LIFO order" true
    (responses
    = [ Stack_type.Pushed; Stack_type.Pushed; Stack_type.Popped 2;
        Stack_type.Popped 1 ])

let test_stack_empty () =
  let r =
    Runner.run ~n:1 ~factory:(Treiber_stack.factory ())
      ~driver:(Driver.solo 1 ~workload:(Driver.n_times 1 (fun _ _ -> Stack_type.Pop)))
      ~max_steps:50 ()
  in
  check_bool "pop on empty" true
    (History.responses_of r.Run_report.history 1 = [ Stack_type.Empty ])

let test_stack_linearizable_under_contention () =
  List.iter
    (fun seed ->
      let r = run_stack ~seed ~n:3 in
      check_bool
        (Printf.sprintf "linearizable (seed %d)" seed)
        true
        (Stack_lin.check r.Run_report.history))
    [ 1; 2; 3; 4; 5 ]

let test_stack_lock_free () =
  let r = run_stack ~seed:9 ~n:3 in
  check_bool "every operation completed" true
    (History.pending_procs r.Run_report.history = Proc.Set.empty)

let prop_stack_linearizable =
  QCheck2.Test.make ~name:"Treiber stack is linearizable" ~count:12
    QCheck2.Gen.(int_range 0 1000)
    (fun seed -> Stack_lin.check (run_stack ~seed ~n:2).Run_report.history)

(* ------------------------------------------------------------------ *)
(* The TAS mutex and the starvation adversary.                         *)

let test_mutex_solo () =
  let r =
    Runner.run ~n:2 ~factory:(Mutex.tas_factory ())
      ~driver:(Driver.with_crashes [ (0, 2) ] (Mutex.workload ~procs:[ 1 ] ()))
      ~max_steps:100 ()
  in
  check_bool "mutual exclusion" true
    (Mutex.mutual_exclusion r.Run_report.history);
  check_bool "solo process keeps acquiring" true
    (List.assoc 1 (Mutex.acquisitions r.Run_report.history) > 3);
  check_bool "(1,1)-freedom holds" true
    (Freedom.holds ~good:Mutex.good r Freedom.obstruction_freedom)

let test_mutex_fair_schedules_safe () =
  List.iter
    (fun seed ->
      let r =
        Runner.run ~n:3 ~factory:(Mutex.tas_factory ())
          ~driver:(Mutex.random_workload ~seed ())
          ~max_steps:300 ()
      in
      check_bool
        (Printf.sprintf "mutual exclusion (seed %d)" seed)
        true
        (Mutex.mutual_exclusion r.Run_report.history);
      check_bool "someone acquires" true
        (List.exists (fun (_, c) -> c > 0) (Mutex.acquisitions r.Run_report.history));
      check_bool "lock-freedom holds" true
        (Freedom.holds ~good:Mutex.good r (Freedom.lock_freedom ~n:3)))
    [ 1; 2; 3; 4 ]

let test_mutex_starvation_adversary () =
  let r = Mutex.run_starvation ~factory:(Mutex.tas_factory ()) ~max_steps:600 in
  let acq = Mutex.acquisitions r.Run_report.history in
  check_int "p1 never acquires" 0 (List.assoc 1 acq);
  check_bool "p2 acquires repeatedly" true (List.assoc 2 acq > 3);
  check_bool "mutual exclusion still holds" true
    (Mutex.mutual_exclusion r.Run_report.history);
  check_bool "bounded fair" true (Fairness.is_bounded_fair r);
  check_bool "(1,2)-freedom holds (p2 progresses)" true
    (Freedom.holds ~good:Mutex.good r (Freedom.make ~l:1 ~k:2));
  check_bool "(2,2)-freedom violated: no starvation-freedom" false
    (Freedom.holds ~good:Mutex.good r (Freedom.make ~l:2 ~k:2));
  check_bool "starvation-freedom (= wait-freedom on acquires) violated" false
    (Live_property.holds (Live_property.wait_freedom ~good:Mutex.good ~n:2) r)

let test_mutex_safety_checker_units () =
  let acq p = Event.Invocation (p, Mutex.Acquire) in
  let got p = Event.Response (p, Mutex.Acquired) in
  let rel p = Event.Invocation (p, Mutex.Release) in
  let rld p = Event.Response (p, Mutex.Released) in
  check_bool "legal handover" true
    (Mutex.mutual_exclusion
       (History.of_list [ acq 1; got 1; rel 1; rld 1; acq 2; got 2 ]));
  check_bool "double holding rejected" false
    (Mutex.mutual_exclusion
       (History.of_list [ acq 1; got 1; acq 2; got 2 ]));
  check_bool "release by non-holder rejected" false
    (Mutex.mutual_exclusion (History.of_list [ acq 1; got 1; rel 2; rld 2 ]))

(* ------------------------------------------------------------------ *)
(* I(1,2) over the register-built snapshot.                            *)

let total_commits h =
  List.fold_left (fun acc (_, c) -> acc + c) 0 (Slx_tm.Tm_adversary.commits h)

let test_i12_reg_lemma_5_4 () =
  (* Lemma 5.4's S' with the snapshot assumption discharged. *)
  List.iter
    (fun seed ->
      let r =
        Runner.run ~n:3
          ~factory:(Slx_tm.I12_reg.factory ~vars:2)
          ~driver:(Slx_tm.Tm_workload.random ~seed ())
          ~max_steps:250 ()
      in
      check_bool
        (Printf.sprintf "S' holds (seed %d)" seed)
        true
        (Slx_tm.S_prime.check_final r.Run_report.history))
    [ 1; 2; 3 ]

let test_i12_reg_two_active_commit () =
  let r =
    Runner.run ~n:3
      ~factory:(Slx_tm.I12_reg.factory ~vars:2)
      ~driver:
        (Driver.with_crashes [ (0, 3) ]
           (Slx_tm.Tm_workload.random ~procs:[ 1; 2 ] ~seed:5 ()))
      ~max_steps:800 ()
  in
  check_bool "commits with two active" true (total_commits r.Run_report.history > 0);
  check_bool "(1,2)-freedom" true
    (Freedom.holds ~good:Slx_tm.Tm_type.good r (Freedom.make ~l:1 ~k:2))

let test_i12_reg_three_way_starves () =
  let r =
    Slx_tm.Tm_adversary.run_three_way
      ~factory:(Slx_tm.I12_reg.factory ~vars:2)
      ~max_steps:1500
  in
  check_int "zero commits under the three-way adversary" 0
    (total_commits r.Run_report.history);
  check_bool "(1,3)-freedom violated" false
    (Freedom.holds ~good:Slx_tm.Tm_type.good r (Freedom.make ~l:1 ~k:3))

(* ------------------------------------------------------------------ *)
(* k-set agreement.                                                    *)

let propose_own =
  Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1))

let test_kset_checker_units () =
  let open Slx_consensus in
  let inv p v = Event.Invocation (p, Consensus_type.Propose v) in
  let res p v = Event.Response (p, Consensus_type.Decided v) in
  let h =
    History.of_list [ inv 1 0; inv 2 1; inv 3 2; res 1 0; res 2 1; res 3 0 ]
  in
  check_bool "two distinct decisions pass 2-set" true (Kset.check ~k:2 h);
  check_bool "two distinct decisions fail 1-set" false (Kset.check ~k:1 h);
  check_bool "validity inherited" false
    (Kset.check ~k:3 (History.of_list [ inv 1 0; res 1 9 ]));
  check_int "group partition" 0 (Kset.group_of ~k:2 1);
  check_int "group partition 2" 1 (Kset.group_of ~k:2 2);
  check_int "group partition 3" 0 (Kset.group_of ~k:2 3)

let test_kset_grouped_safe () =
  let open Slx_consensus in
  List.iter
    (fun seed ->
      let r =
        Runner.run ~n:4
          ~factory:(Kset.grouped_factory ~k:2 ())
          ~driver:(Driver.random ~seed ~workload:propose_own ())
          ~max_steps:800 ()
      in
      check_bool
        (Printf.sprintf "2-set agreement (seed %d)" seed)
        true
        (Kset.check ~k:2 r.Run_report.history))
    [ 1; 2; 3; 4; 5 ]

let test_kset_can_exceed_consensus () =
  (* With k = 2 and proposers in different groups, two distinct values
     are actually decided: k-set agreement is genuinely weaker. *)
  let open Slx_consensus in
  (* NB: a round-robin driver would be lockstep within each group and
     decide nothing — the consensus pathology again; random schedules
     decide. *)
  let r =
    Runner.run ~n:4
      ~factory:(Kset.grouped_factory ~k:2 ())
      ~driver:(Driver.random ~seed:13 ~workload:propose_own ())
      ~max_steps:800 ()
  in
  let decided =
    List.sort_uniq Int.compare
      (List.map snd (Consensus_adversary.decisions r.Run_report.history))
  in
  check_bool "at least one decision" true (decided <> []);
  check_bool "no more than two values" true (List.length decided <= 2)

let test_kset_in_group_lockstep_starves_group () =
  let open Slx_consensus in
  (* p1 and p3 share group 0 under k = 2, n = 4: the lockstep adversary
     inside the group keeps both undecided, exactly as for consensus. *)
  let r =
    Runner.run ~n:4
      ~factory:(Kset.grouped_factory ~k:2 ())
      ~driver:
        (Driver.with_crashes
           [ (0, 2); (0, 4) ]
           (Consensus_adversary.lockstep ~pair:(1, 3) ()))
      ~max_steps:1500 ()
  in
  check_bool "no decision in the starved group" true
    (Consensus_adversary.decisions r.Run_report.history = []);
  check_bool "safety holds" true (Kset.check ~k:2 r.Run_report.history);
  check_bool "fair" true (Fairness.is_bounded_fair r);
  check_bool "(1,2)-freedom violated for k-set too" false
    (Freedom.holds
       ~good:(fun (_ : Consensus_type.response) -> true)
       r (Freedom.make ~l:1 ~k:2))


(* ------------------------------------------------------------------ *)
(* The Bakery lock: starvation-freedom is implementable for mutexes.   *)

let test_bakery_mutual_exclusion () =
  List.iter
    (fun seed ->
      let r =
        Runner.run ~n:3 ~factory:(Bakery.factory ())
          ~driver:(Mutex.random_workload ~seed ())
          ~max_steps:600 ()
      in
      check_bool
        (Printf.sprintf "mutual exclusion (seed %d)" seed)
        true
        (Mutex.mutual_exclusion r.Run_report.history))
    [ 1; 2; 3; 4 ]

let test_bakery_starvation_free_under_fair_scheduling () =
  (* Round-robin: every process acquires within the window -
     starvation-freedom (= wait-freedom on acquires), which the TAS
     lock cannot provide. *)
  let r =
    Runner.run ~n:3 ~factory:(Bakery.factory ())
      ~driver:(Mutex.workload ())
      ~max_steps:1200 ()
  in
  check_bool "fair" true (Fairness.is_bounded_fair r);
  List.iter
    (fun p ->
      check_bool
        (Printf.sprintf "p%d acquires in the window" p)
        true
        (Run_report.makes_progress ~good:Mutex.good r p))
    [ 1; 2; 3 ];
  check_bool "starvation-freedom ((n,n) on acquires) holds" true
    (Freedom.holds ~good:Mutex.good r (Freedom.wait_freedom ~n:3))

let test_bakery_defeats_starvation_adversary () =
  (* The TAS starvation scheduler starves p1 of the LOCK only by
     starving it of STEPS: against the Bakery's FIFO discipline the
     resulting run is unfair, so it is no exclusion witness. *)
  let r = Mutex.run_starvation ~factory:(Bakery.factory ()) ~max_steps:800 in
  let p1_starved = List.assoc 1 (Mutex.acquisitions r.Run_report.history) = 0 in
  check_bool "no FAIR starvation of the Bakery lock" false
    (p1_starved && Fairness.is_bounded_fair r);
  check_bool "mutual exclusion regardless" true
    (Mutex.mutual_exclusion r.Run_report.history)

let test_bakery_solo () =
  let r =
    Runner.run ~n:3 ~factory:(Bakery.factory ())
      ~driver:
        (Driver.with_crashes
           [ (0, 2); (0, 3) ]
           (Mutex.workload ~procs:[ 1 ] ()))
      ~max_steps:300 ()
  in
  check_bool "solo acquires repeatedly" true
    (List.assoc 1 (Mutex.acquisitions r.Run_report.history) > 2)

let prop_bakery_safe =
  QCheck2.Test.make ~name:"Bakery preserves mutual exclusion" ~count:15
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let r =
        Runner.run ~n:3 ~factory:(Bakery.factory ())
          ~driver:(Mutex.random_workload ~seed ())
          ~max_steps:400 ()
      in
      Mutex.mutual_exclusion r.Run_report.history)


(* ------------------------------------------------------------------ *)
(* Peterson's two-process lock.                                        *)

let test_peterson_mutual_exclusion () =
  List.iter
    (fun seed ->
      let r =
        Runner.run ~n:2 ~factory:(Peterson.factory ())
          ~driver:(Mutex.random_workload ~seed ())
          ~max_steps:400 ()
      in
      check_bool
        (Printf.sprintf "mutual exclusion (seed %d)" seed)
        true
        (Mutex.mutual_exclusion r.Run_report.history))
    [ 1; 2; 3; 4; 5 ]

let test_peterson_starvation_free_when_fair () =
  let r =
    Runner.run ~n:2 ~factory:(Peterson.factory ())
      ~driver:(Mutex.workload ())
      ~max_steps:800 ()
  in
  check_bool "fair" true (Fairness.is_bounded_fair r);
  check_bool "both acquire in the window" true
    (Freedom.holds ~good:Mutex.good r (Freedom.wait_freedom ~n:2))

let test_peterson_defeats_starvation_adversary () =
  let r = Mutex.run_starvation ~factory:(Peterson.factory ()) ~max_steps:600 in
  let p1_starved = List.assoc 1 (Mutex.acquisitions r.Run_report.history) = 0 in
  check_bool "no fair starvation of Peterson" false
    (p1_starved && Fairness.is_bounded_fair r)


(* ------------------------------------------------------------------ *)
(* The CAS queue (FIFO).                                               *)

module Queue_lin = Slx_safety.Linearizability.Make (Queue_type.Self)

let queue_workload : (Queue_type.invocation, Queue_type.response) Driver.workload =
  Driver.n_times 4 (fun p k ->
      if k mod 2 = 0 then Queue_type.Enqueue ((p * 100) + k)
      else Queue_type.Dequeue)

let run_queue ~seed ~n =
  Runner.run ~n ~factory:(Cas_queue.factory ())
    ~driver:(Driver.random ~seed ~workload:queue_workload ())
    ~max_steps:600 ()

let test_queue_sequential_fifo () =
  let r =
    Runner.run ~n:1 ~factory:(Cas_queue.factory ())
      ~driver:
        (Driver.solo 1
           ~workload:
             (Driver.n_times 4 (fun _ k ->
                  match k with
                  | 0 -> Queue_type.Enqueue 1
                  | 1 -> Queue_type.Enqueue 2
                  | 2 -> Queue_type.Dequeue
                  | _ -> Queue_type.Dequeue)))
      ~max_steps:200 ()
  in
  check_bool "FIFO order" true
    (History.responses_of r.Run_report.history 1
    = [ Queue_type.Enqueued; Queue_type.Enqueued; Queue_type.Dequeued 1;
        Queue_type.Dequeued 2 ])

let test_queue_linearizable_under_contention () =
  List.iter
    (fun seed ->
      let r = run_queue ~seed ~n:3 in
      check_bool
        (Printf.sprintf "linearizable (seed %d)" seed)
        true
        (Queue_lin.check r.Run_report.history))
    [ 1; 2; 3; 4 ]

let test_fifo_vs_lifo_discipline () =
  (* The same event pattern is queue-legal but not stack-legal: two
     inserts then a removal returning the FIRST item. *)
  let fifo_h =
    History.of_list
      [
        Event.Invocation (1, Queue_type.Enqueue 1);
        Event.Response (1, Queue_type.Enqueued);
        Event.Invocation (1, Queue_type.Enqueue 2);
        Event.Response (1, Queue_type.Enqueued);
        Event.Invocation (2, Queue_type.Dequeue);
        Event.Response (2, Queue_type.Dequeued 1);
      ]
  in
  check_bool "queue accepts FIFO removal" true (Queue_lin.check fifo_h);
  let lifo_h =
    History.of_list
      [
        Event.Invocation (1, Stack_type.Push 1);
        Event.Response (1, Stack_type.Pushed);
        Event.Invocation (1, Stack_type.Push 2);
        Event.Response (1, Stack_type.Pushed);
        Event.Invocation (2, Stack_type.Pop);
        Event.Response (2, Stack_type.Popped 1);
      ]
  in
  check_bool "stack rejects FIFO removal" false (Stack_lin.check lifo_h)

let prop_queue_linearizable =
  QCheck2.Test.make ~name:"CAS queue is linearizable" ~count:12
    QCheck2.Gen.(int_range 0 1000)
    (fun seed -> Queue_lin.check (run_queue ~seed ~n:2).Run_report.history)

let suites =
  [
    ( "objects-snapshot",
      [
        quick "solo semantics" test_snapshot_solo_semantics;
        quick "wait-free" test_snapshot_wait_free;
        quick "linearizable" test_snapshot_linearizable;
      ]
      @ qcheck [ prop_snapshot_linearizable ] );
    ( "objects-stack",
      [
        quick "sequential LIFO" test_stack_sequential;
        quick "pop empty" test_stack_empty;
        quick "linearizable under contention" test_stack_linearizable_under_contention;
        quick "lock-free" test_stack_lock_free;
      ]
      @ qcheck [ prop_stack_linearizable ] );
    ( "objects-queue",
      [
        quick "sequential FIFO" test_queue_sequential_fifo;
        quick "linearizable under contention" test_queue_linearizable_under_contention;
        quick "FIFO vs LIFO discipline" test_fifo_vs_lifo_discipline;
      ]
      @ qcheck [ prop_queue_linearizable ] );
    ( "objects-mutex",
      [
        quick "solo" test_mutex_solo;
        quick "fair schedules safe" test_mutex_fair_schedules_safe;
        quick "starvation adversary" test_mutex_starvation_adversary;
        quick "safety checker units" test_mutex_safety_checker_units;
        quick "bakery mutual exclusion" test_bakery_mutual_exclusion;
        quick "bakery starvation-free when fair"
          test_bakery_starvation_free_under_fair_scheduling;
        quick "bakery defeats the starvation adversary"
          test_bakery_defeats_starvation_adversary;
        quick "bakery solo" test_bakery_solo;
        quick "peterson mutual exclusion" test_peterson_mutual_exclusion;
        quick "peterson starvation-free when fair"
          test_peterson_starvation_free_when_fair;
        quick "peterson defeats the starvation adversary"
          test_peterson_defeats_starvation_adversary;
      ]
      @ qcheck [ prop_bakery_safe ] );
    ( "tm-i12-from-registers",
      [
        quick "Lemma 5.4 with snapshot discharged" test_i12_reg_lemma_5_4;
        quick "two active commit" test_i12_reg_two_active_commit;
        quick "three-way adversary starves" test_i12_reg_three_way_starves;
      ] );
    ( "kset",
      [
        quick "checker units" test_kset_checker_units;
        quick "grouped implementation safe" test_kset_grouped_safe;
        quick "genuinely weaker than consensus" test_kset_can_exceed_consensus;
        quick "in-group lockstep starves" test_kset_in_group_lockstep_starves_group;
      ] );
  ]
