(* Failure injection: crash processes at arbitrary points and check
   that every implementation keeps its safety property, that crashed
   processes never act again, and that the liveness machinery's
   fewer-correct-than-l branch behaves. *)

open Slx_history
open Slx_sim
open Slx_liveness
open Support

let propose_own =
  Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1))

(* Crash schedule: [victims] at staggered times derived from [at]. *)
let crashes ~at victims = List.mapi (fun i p -> (at + (7 * i), p)) victims

let no_events_after_crash r =
  let crash_time p =
    let rec find i = function
      | [] -> None
      | Event.Crash q :: _ when q = p -> Some r.Run_report.event_times.(i)
      | _ :: rest -> find (i + 1) rest
    in
    find 0 (History.to_list r.Run_report.history)
  in
  Proc.Set.for_all
    (fun p ->
      match crash_time p with
      | None -> true
      | Some t ->
          List.for_all (fun (t', q) -> q <> p || t' <= t) r.Run_report.grants)
    r.Run_report.crashed

(* ------------------------------------------------------------------ *)
(* Consensus under crashes.                                            *)

let test_consensus_crash_mid_round () =
  List.iter
    (fun at ->
      let r =
        Runner.run ~n:3
          ~factory:(Slx_consensus.Register_consensus.factory ())
          ~driver:
            (Driver.with_crashes (crashes ~at [ 2 ])
               (Driver.random ~seed:at ~workload:propose_own ()))
          ~max_steps:500 ()
      in
      check_bool
        (Printf.sprintf "safety with crash at %d" at)
        true
        (Slx_consensus.Consensus_safety.check r.Run_report.history);
      check_bool "crashed process stops" true (no_events_after_crash r))
    [ 3; 11; 25; 60 ]

let test_consensus_survivor_decides () =
  (* Crash all but p1 mid-run: the survivor must still decide
     (obstruction-freedom under real crashes, not just quiet
     schedules). *)
  let r =
    Runner.run ~n:3
      ~factory:(Slx_consensus.Register_consensus.factory ())
      ~driver:
        (Driver.with_crashes
           (crashes ~at:9 [ 2; 3 ])
           (Driver.random ~seed:4 ~workload:propose_own ()))
      ~max_steps:600 ()
  in
  check_bool "the survivor decides" true
    (List.exists
       (fun (p, _) -> p = 1)
       (Slx_consensus.Consensus_adversary.decisions r.Run_report.history));
  check_bool "(1,1)-freedom holds" true
    (Freedom.holds
       ~good:(fun (_ : Slx_consensus.Consensus_type.response) -> true)
       r Freedom.obstruction_freedom)

let test_fewer_correct_than_l_branch () =
  (* With two of three crashed, (3,3)-freedom's second branch applies:
     ALL correct processes must progress — here the lone survivor
     does, so the property holds despite only one process total
     progressing. *)
  let r =
    Runner.run ~n:3
      ~factory:(Slx_consensus.Cas_consensus.factory ())
      ~driver:
        (Driver.with_crashes
           (crashes ~at:0 [ 2; 3 ])
           (Driver.random ~seed:2 ~workload:propose_own ()))
      ~max_steps:200 ()
  in
  check_bool "(3,3)-freedom holds via the all-correct branch" true
    (Freedom.holds
       ~good:(fun (_ : Slx_consensus.Consensus_type.response) -> true)
       r
       (Freedom.wait_freedom ~n:3))

(* ------------------------------------------------------------------ *)
(* TM under crashes.                                                   *)

let test_tm_crash_mid_transaction () =
  (* A process crashing with an open transaction leaves it live; the
     completion machinery must still find the history opaque, and
     other processes must keep committing. *)
  List.iter
    (fun (seed, at) ->
      let r =
        Runner.run ~n:3 ~factory:(Slx_tm.I12.factory ~vars:2)
          ~driver:
            (Driver.with_crashes (crashes ~at [ 2 ])
               (Slx_tm.Tm_workload.random ~seed ()))
          ~max_steps:250 ()
      in
      check_bool
        (Printf.sprintf "opacity with crash (seed %d at %d)" seed at)
        true
        (Slx_tm.Opacity.check_final r.Run_report.history);
      check_bool "S' too" true
        (Slx_tm.S_prime.check_final r.Run_report.history))
    [ (1, 5); (2, 13); (3, 31); (4, 50) ]

let test_tm_survivors_commit () =
  let r =
    Runner.run ~n:3 ~factory:(Slx_tm.Agp_tm.factory ~vars:1)
      ~driver:
        (Driver.with_crashes (crashes ~at:20 [ 3 ])
           (Slx_tm.Tm_workload.random ~seed:8 ()))
      ~max_steps:400 ()
  in
  let commits = Slx_tm.Tm_adversary.commits r.Run_report.history in
  let survivors_commit =
    List.exists (fun (p, c) -> p <> 3 && c > 0) commits
  in
  check_bool "survivors keep committing" true survivors_commit;
  check_bool "lock-freedom holds among survivors" true
    (Freedom.holds ~good:Slx_tm.Tm_type.good r (Freedom.lock_freedom ~n:3))

(* ------------------------------------------------------------------ *)
(* Mutex under crashes: the TAS lock is NOT crash-robust — a holder
   crashing inside its critical section leaves the lock set forever.
   The test documents exactly that failure mode.                       *)

let test_mutex_holder_crash_blocks () =
  let open Slx_objects in
  (* Let p1 acquire, then crash it; p2 can never acquire. *)
  let driver view =
    match view.Driver.time with
    | t ->
        if Proc.Set.mem 1 (History.crashed view.Driver.history) then
          (* After the crash: p2 tries forever. *)
          match view.Driver.status 2 with
          | Runtime.Ready -> Driver.Schedule 2
          | Runtime.Idle -> Driver.Invoke (2, Mutex.Acquire)
          | Runtime.Crashed -> Driver.Stop
        else if t = 0 then Driver.Invoke (1, Mutex.Acquire)
        else
          match view.Driver.status 1 with
          | Runtime.Ready -> Driver.Schedule 1
          | Runtime.Idle -> Driver.Crash 1 (* holding the lock *)
          | Runtime.Crashed -> Driver.Stop
  in
  let r =
    Runner.run ~n:2 ~factory:(Mutex.tas_factory ()) ~driver ~max_steps:200 ()
  in
  check_bool "p1 acquired then crashed" true
    (List.assoc 1 (Mutex.acquisitions r.Run_report.history) = 1
    && Proc.Set.mem 1 r.Run_report.crashed);
  check_int "p2 never acquires: locks are blocking" 0
    (List.assoc 2 (Mutex.acquisitions r.Run_report.history));
  check_bool "mutual exclusion trivially preserved" true
    (Mutex.mutual_exclusion r.Run_report.history);
  (* This is the non-blocking/blocking divide the paper's footnote
     draws: the crashed holder prevents others' progress, which no
     (l,k)-freedom point tolerates. *)
  check_bool "(1,2)-freedom violated by the blocked survivor" false
    (Freedom.holds ~good:Slx_objects.Mutex.good r (Freedom.make ~l:1 ~k:2))

(* Property test: random crash storms never break safety anywhere. *)
let prop_crash_storm_safety =
  QCheck2.Test.make ~name:"crash storms never break safety" ~count:20
    QCheck2.Gen.(pair (int_range 0 500) (int_range 1 40))
    (fun (seed, at) ->
      let consensus =
        Runner.run ~n:3
          ~factory:(Slx_consensus.Register_consensus.factory ())
          ~driver:
            (Driver.with_crashes
               (crashes ~at [ ((seed mod 3) + 1) ])
               (Driver.random ~seed ~workload:propose_own ()))
          ~max_steps:300 ()
      in
      let tm =
        Runner.run ~n:3 ~factory:(Slx_tm.Agp_tm.factory ~vars:1)
          ~driver:
            (Driver.with_crashes
               (crashes ~at [ ((seed mod 3) + 1) ])
               (Slx_tm.Tm_workload.random ~seed ()))
          ~max_steps:160 ()
      in
      Slx_consensus.Consensus_safety.check consensus.Run_report.history
      && Slx_tm.Opacity.check_final tm.Run_report.history)

let suites =
  [
    ( "failure-injection",
      [
        quick "consensus crash mid-round" test_consensus_crash_mid_round;
        quick "consensus survivor decides" test_consensus_survivor_decides;
        quick "fewer-correct-than-l branch" test_fewer_correct_than_l_branch;
        quick "TM crash mid-transaction" test_tm_crash_mid_transaction;
        quick "TM survivors commit" test_tm_survivors_commit;
        quick "mutex holder crash blocks" test_mutex_holder_crash_blocks;
      ]
      @ qcheck [ prop_crash_storm_safety ] );
  ]
