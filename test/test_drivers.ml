(* Driver combinators and Run_report accessors: the plumbing that
   every experiment stands on. *)

open Slx_history
open Slx_sim
open Support

type cinv = Tick
type cres = Tock

let factory () : (cinv, cres) Runner.factory =
 fun ~n:_ ->
  let r = Slx_base_objects.Register.make 0 in
  fun ~proc:_ Tick ->
    Slx_base_objects.Register.write r 1;
    Tock

let workload : (cinv, cres) Driver.workload = Driver.forever (fun _ -> Tick)

let test_forever_and_n_times () =
  check_bool "forever never runs out" true
    (Driver.forever (fun p -> p) 2 1_000_000 = Some 2);
  let w = Driver.n_times 2 (fun p k -> (p, k)) in
  check_bool "n_times counts" true
    (w 1 0 = Some (1, 0) && w 1 1 = Some (1, 1) && w 1 2 = None)

let test_with_crashes_exact_time () =
  let driver =
    Driver.with_crashes [ (5, 2); (9, 1) ] (Driver.round_robin ~workload ())
  in
  let r = Runner.run ~n:2 ~factory:(factory ()) ~driver ~max_steps:30 () in
  check_bool "both crashed" true
    (Proc.Set.equal r.Run_report.crashed (Proc.Set.of_list [ 1; 2 ]));
  (* Crash events appear in the history at (or just after) their
     scheduled times. *)
  let crash_times =
    List.filteri
      (fun i _ -> Event.is_crash (History.nth r.Run_report.history i))
      (List.init (History.length r.Run_report.history) (fun i -> i))
    |> List.map (fun i -> r.Run_report.event_times.(i))
  in
  check_bool "crashes at their scheduled ticks" true
    (List.for_all (fun t -> t = 5 || t = 9) crash_times)

let test_with_crashes_skips_dead () =
  (* Injecting a crash for an already-crashed process must be dropped,
     not raised. *)
  let driver =
    Driver.with_crashes
      [ (2, 1); (4, 1) ]
      (Driver.round_robin ~workload ())
  in
  let r = Runner.run ~n:2 ~factory:(factory ()) ~driver ~max_steps:20 () in
  check_int "exactly one crash event" 1
    (History.count Event.is_crash r.Run_report.history)

let test_stop_after_beats_underlying () =
  let driver = Driver.stop_after 3 (Driver.round_robin ~workload ()) in
  let r = Runner.run ~n:1 ~factory:(factory ()) ~driver ~max_steps:50 () in
  check_int "exactly three ticks" 3 r.Run_report.total_time;
  check_bool "reported as driver stop" true
    (r.Run_report.stopped = `Driver_stop || r.Run_report.stopped = `Quiescent)

let test_of_script_stops_at_end () =
  let driver = Driver.of_script [ Driver.Invoke (1, Tick); Driver.Schedule 1 ] in
  let r = Runner.run ~n:1 ~factory:(factory ()) ~driver ~max_steps:50 () in
  check_int "two ticks then stop" 2 r.Run_report.total_time

let test_round_robin_skips_exhausted () =
  (* p1 has one op, p2 has three: round robin must keep p2 going after
     p1 finishes. *)
  let w = Driver.n_times 1 (fun _ _ -> Tick) in
  let w2 p k = if p = 2 then Driver.n_times 3 (fun _ _ -> Tick) p k else w p k in
  let r =
    Runner.run ~n:2 ~factory:(factory ())
      ~driver:(Driver.round_robin ~workload:w2 ())
      ~max_steps:50 ()
  in
  check_int "p1 one response" 1
    (List.length (History.responses_of r.Run_report.history 1));
  check_int "p2 three responses" 3
    (List.length (History.responses_of r.Run_report.history 2));
  check_bool "quiescent" true (r.Run_report.stopped = `Quiescent)

let test_run_report_accessors () =
  let r =
    Runner.run ~n:2 ~factory:(factory ())
      ~driver:(Driver.round_robin ~workload ())
      ~max_steps:20 ~window:10 ()
  in
  check_int "window honoured" 10 r.Run_report.window;
  check_int "window start" 10 (Run_report.window_start r);
  check_bool "in_window boundaries" true
    (Run_report.in_window r 10
    && Run_report.in_window r 19
    && (not (Run_report.in_window r 9))
    && not (Run_report.in_window r 20));
  check_bool "steps split consistent" true
    (Run_report.steps_in_window r 1 <= Run_report.steps_total r 1);
  check_bool "responses in window subset of all" true
    (List.length (Run_report.responses_in_window r 1)
    <= List.length (History.responses_of r.Run_report.history 1))

let test_report_pp_smoke () =
  let r =
    Runner.run ~n:2 ~factory:(factory ())
      ~driver:(Driver.round_robin ~workload ())
      ~max_steps:12 ()
  in
  let s =
    Format.asprintf "%a"
      (Run_report.pp
         ~pp_inv:(fun fmt Tick -> Format.pp_print_string fmt "tick")
         ~pp_res:(fun fmt Tock -> Format.pp_print_string fmt "tock"))
      r
  in
  check_bool "pp mentions steps" true
    (String.length s > 0
    &&
    let has_sub sub =
      let rec go i =
        i + String.length sub <= String.length s
        && (String.sub s i (String.length sub) = sub || go (i + 1))
      in
      go 0
    in
    has_sub "steps" && has_sub "tick")

let suites =
  [
    ( "drivers",
      [
        quick "forever and n_times" test_forever_and_n_times;
        quick "with_crashes exact time" test_with_crashes_exact_time;
        quick "with_crashes skips dead" test_with_crashes_skips_dead;
        quick "stop_after" test_stop_after_beats_underlying;
        quick "of_script stops" test_of_script_stops_at_end;
        quick "round robin skips exhausted" test_round_robin_skips_exhausted;
        quick "run report accessors" test_run_report_accessors;
        quick "report pp smoke" test_report_pp_smoke;
      ] );
  ]
