(* The observability subsystem (Slx_obs): ring sinks, the JSON reader,
   Chrome-trace export/validation, progress heartbeats — and the
   contract that matters most: tracing never changes what an engine
   computes. *)

open Slx_core
open Support
module Telemetry = Slx_obs.Telemetry
module Progress = Slx_obs.Progress
module Obs = Slx_obs.Obs
module Json = Slx_obs.Json
module Trace_export = Slx_obs.Trace_export

(* ------------------------------------------------------------------ *)
(* Ring sinks.                                                         *)

let test_ring_wraparound () =
  let r = Telemetry.ring ~capacity:4 ~domain:0 () in
  let sink = Telemetry.sink_of_ring r in
  for i = 1 to 10 do
    Telemetry.emit sink Telemetry.Run_checked i 0
  done;
  check_int "every emission is counted" 10 (Telemetry.ring_written r);
  check_int "overflow is accounted as drops" 6 (Telemetry.ring_dropped r);
  let events = Telemetry.ring_events r in
  check_int "the ring retains capacity events" 4 (List.length events);
  Alcotest.(check (list int))
    "oldest events are the ones overwritten" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Telemetry.ev_a) events);
  List.iter
    (fun e -> check_int "events carry the ring's domain" 0 e.Telemetry.ev_domain)
    events;
  let rec monotone = function
    | a :: (b :: _ as tl) ->
        check_bool "timestamps are non-decreasing" true
          (a.Telemetry.ev_ns <= b.Telemetry.ev_ns);
        monotone tl
    | _ -> ()
  in
  monotone events

let test_ring_below_capacity () =
  let r = Telemetry.ring ~capacity:8 ~domain:3 () in
  let sink = Telemetry.sink_of_ring r in
  for i = 1 to 5 do
    Telemetry.emit sink Telemetry.Cache_hit i (10 * i)
  done;
  check_int "no drops below capacity" 0 (Telemetry.ring_dropped r);
  check_int "all events retained" 5 (List.length (Telemetry.ring_events r));
  check_bool "ring sinks are enabled" true (Telemetry.enabled sink);
  check_bool "the null sink is disabled" false (Telemetry.enabled Telemetry.null);
  (* Emitting into the null sink must be a no-op (and not crash). *)
  Telemetry.emit Telemetry.null Telemetry.Steal 1 2

let test_dec_codes () =
  Alcotest.(check string) "schedule" "S1" (Telemetry.Dec.pp (Telemetry.Dec.schedule 1));
  Alcotest.(check string) "invoke" "I2" (Telemetry.Dec.pp (Telemetry.Dec.invoke 2));
  Alcotest.(check string) "crash" "C3" (Telemetry.Dec.pp (Telemetry.Dec.crash 3))

(* ------------------------------------------------------------------ *)
(* The minimal JSON reader.                                            *)

let test_json_parses_values () =
  (match Json.parse "{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": true, \"d\": null}}" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
      check_int "array int" 1
        (Option.get
           (Json.int (List.nth (Json.to_list (Option.get (Json.member "a" j))) 0)));
      Alcotest.(check (float 1e-9))
        "array float" 2.5
        (Option.get
           (Json.num (List.nth (Json.to_list (Option.get (Json.member "a" j))) 1)));
      Alcotest.(check string)
        "nested string" "x"
        (Option.get
           (Json.str (List.nth (Json.to_list (Option.get (Json.member "a" j))) 2)));
      check_bool "nested bool" true
        (Option.get (Json.member "b" j) |> Json.member "c"
        = Some (Json.Bool true)));
  match Json.parse "\"a\\n\\\"b\\\\c\\u0041\"" with
  | Error e -> Alcotest.failf "escape parse failed: %s" e
  | Ok j ->
      Alcotest.(check string) "escapes decode" "a\n\"b\\cA" (Option.get (Json.str j))

let test_json_rejects_garbage () =
  let bad s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parser accepted %S" s
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "1 2";
  bad "nul";
  bad "\"unterminated"

(* ------------------------------------------------------------------ *)
(* Chrome-trace export and validation.                                 *)

let ev ?(domain = 0) ns kind a b =
  { Telemetry.ev_ns = ns; ev_domain = domain; ev_kind = kind; ev_a = a; ev_b = b }

let test_trace_export_well_formed () =
  let events =
    [
      ev 100 Telemetry.Node_enter 0 0;
      ev 110 Telemetry.Decision 1 (Telemetry.Dec.schedule 1);
      ev 120 Telemetry.Node_enter 1 0;
      ev 130 Telemetry.Cache_hit 1 3;
      ev 140 Telemetry.Node_leave 1 0;
      ev 150 Telemetry.Frontier_push 7 1;
      ev 160 ~domain:1 Telemetry.Steal 7 0;
      ev 170 Telemetry.Pump_start 2 0;
      ev 180 Telemetry.Pump_verdict 2 1;
      ev 190 Telemetry.Node_leave 0 0;
    ]
  in
  let s = Trace_export.to_string ~events_dropped:5 events in
  match Json.parse s with
  | Error e -> Alcotest.failf "emitted trace does not parse: %s" e
  | Ok json -> begin
      match Trace_export.validate json with
      | Error e -> Alcotest.failf "emitted trace does not validate: %s" e
      | Ok sm ->
          check_int "all events survive the round trip" 10
            sm.Trace_export.sm_events;
          check_int "node spans balance" 2 (Trace_export.span_count sm "node");
          check_int "pump spans balance" 1 (Trace_export.span_count sm "pump");
          check_int "cache hit instant" 1
            (Trace_export.instant_count sm "cache_hit");
          check_int "one flow start" 1 sm.Trace_export.sm_flow_starts;
          check_int "one flow end" 1 sm.Trace_export.sm_flow_ends;
          check_int "two lanes" 2 sm.Trace_export.sm_lanes;
          check_int "dropped count survives" 5 sm.Trace_export.sm_dropped
    end

let test_trace_validate_rejects_unbalanced () =
  let unbalanced =
    [ ev 100 Telemetry.Node_enter 0 0; ev 110 Telemetry.Node_enter 1 0;
      ev 120 Telemetry.Node_leave 1 0 ]
  in
  (match
     Json.parse (Trace_export.to_string ~events_dropped:0 unbalanced)
   with
  | Ok json -> begin
      match Trace_export.validate json with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "validator accepted an open span"
    end
  | Error e -> Alcotest.failf "unexpected parse error: %s" e);
  let orphan_flow = [ ev 100 ~domain:2 Telemetry.Steal 9 0 ] in
  match Json.parse (Trace_export.to_string ~events_dropped:0 orphan_flow) with
  | Ok json -> begin
      match Trace_export.validate json with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "validator accepted a flow end without start"
    end
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

(* ------------------------------------------------------------------ *)
(* Tracing through the engines: determinism and reconciliation.        *)

let one_proposal =
  Explore.workload_invoke
    (Slx_sim.Driver.n_times 1 (fun p _ ->
         Slx_consensus.Consensus_type.Propose (p - 1)))

let explore_register ?cache ?cache_capacity ?(por = false) ?(symmetry = false)
    ?domains ?obs () =
  Explore.explore ~n:2
    ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
    ~invoke:one_proposal ~depth:8 ?cache ?cache_capacity ~por ~symmetry
    ?domains ?obs
    ~check:(fun r ->
      Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history)
    ()

let essence ~steps e =
  let s = e.Explore.stats in
  ( (match e.Explore.outcome with
    | Explore.Ok runs -> ("ok", runs)
    | Explore.Counterexample _ -> ("cex", 0)),
    s.Explore_stats.runs,
    (if steps then s.Explore_stats.steps_executed else 0),
    s.Explore_stats.history_digest )

let test_tracing_does_not_change_verdicts () =
  (* [steps_executed] is scheduling-dependent in the parallel engine
     (per-domain transposition caches split differently run to run), so
     it is only compared for the deterministic sequential configs; the
     verdict, run count and history digest must match everywhere. *)
  let configs =
    [
      ("plain", true, fun obs -> explore_register ~obs ());
      ("no-cache", true, fun obs -> explore_register ~cache:false ~obs ());
      ( "bounded-cache",
        true,
        fun obs -> explore_register ~cache_capacity:8 ~obs () );
      ( "por+symmetry",
        true,
        fun obs -> explore_register ~por:true ~symmetry:true ~obs () );
      ("domains-3", false, fun obs -> explore_register ~domains:3 ~obs ());
    ]
  in
  List.iter
    (fun (name, steps, run) ->
      (* A bundle is single-shot, so each run gets its own. *)
      let untraced = run (Obs.create ()) in
      let traced = run (Obs.create ~tracing:true ()) in
      Alcotest.(check (pair (pair (pair string int) int) (pair int int)))
        (name ^ ": tracing changes nothing the engine computes")
        (let a, b, c, d = essence ~steps untraced in
         (((fst a, snd a), b), (c, d)))
        (let a, b, c, d = essence ~steps traced in
         (((fst a, snd a), b), (c, d))))
    configs

let count_kind events k =
  List.length (List.filter (fun e -> e.Telemetry.ev_kind = k) events)

let test_traced_events_reconcile_with_stats () =
  let obs = Obs.create ~tracing:true () in
  let e = explore_register ~cache_capacity:8 ~obs () in
  let s = e.Explore.stats in
  let events = Obs.events obs in
  check_int "no drops at the default ring size" 0 (Obs.events_dropped obs);
  check_int "one node-enter per visited node" s.Explore_stats.nodes
    (count_kind events Telemetry.Node_enter);
  check_int "node spans balance" s.Explore_stats.nodes
    (count_kind events Telemetry.Node_leave);
  check_int "one cache-hit event per cache hit" s.Explore_stats.cache_hits
    (count_kind events Telemetry.Cache_hit);
  check_int "one evict event per eviction" s.Explore_stats.cache_evictions
    (count_kind events Telemetry.Cache_evict);
  check_int "one run-checked event per checked run" s.Explore_stats.runs_checked
    (count_kind events Telemetry.Run_checked);
  (* The export of the same run validates and agrees on the counts. *)
  match Json.parse (Obs.trace_string obs) with
  | Error err -> Alcotest.failf "engine trace does not parse: %s" err
  | Ok json -> begin
      match Trace_export.validate json with
      | Error err -> Alcotest.failf "engine trace does not validate: %s" err
      | Ok sm ->
          check_int "exported node spans match the stats" s.Explore_stats.nodes
            (Trace_export.span_count sm "node");
          check_int "exported cache hits match the stats"
            s.Explore_stats.cache_hits
            (Trace_export.instant_count sm "cache_hit")
    end

let test_traced_steals_have_flow_starts () =
  let obs = Obs.create ~tracing:true () in
  let e = explore_register ~domains:2 ~obs () in
  let s = e.Explore.stats in
  match Json.parse (Obs.trace_string obs) with
  | Error err -> Alcotest.failf "parallel trace does not parse: %s" err
  | Ok json -> begin
      match Trace_export.validate json with
      | Error err ->
          Alcotest.failf "parallel trace does not validate: %s" err
      | Ok sm ->
          (* validate already proved every flow end has a start. *)
          check_int "one flow end per steal" s.Explore_stats.steals
            sm.Trace_export.sm_flow_ends;
          check_bool "spans balance on every lane" true
            (Trace_export.span_count sm "node" = s.Explore_stats.nodes)
    end

let test_live_search_traced_matches_untraced () =
  let point = Slx_liveness.Freedom.make ~l:1 ~k:1 in
  let invoke =
    Explore.workload_invoke
      (Slx_sim.Driver.forever (fun p ->
           Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  let search ?obs () =
    Live_explore.search ~n:2
      ~factory:(fun () ->
        Slx_consensus.Register_consensus.factory ~max_rounds:8 ())
      ~invoke
      ~good:(fun (_ : Slx_consensus.Consensus_type.response) -> true)
      ~point ~depth:6 ~max_crashes:1 ?obs ()
  in
  let untraced = search () in
  let obs = Obs.create ~tracing:true () in
  let traced = search ~obs () in
  let verdict r =
    match r.Live_explore.outcome with
    | Live_explore.Lasso _ -> "lasso"
    | Live_explore.No_fair_cycle -> "none"
  in
  Alcotest.(check string)
    "same verdict" (verdict untraced) (verdict traced);
  check_int "same cycles examined"
    untraced.Live_explore.stats.Explore_stats.cycles_examined
    traced.Live_explore.stats.Explore_stats.cycles_examined;
  check_int "same steps"
    untraced.Live_explore.stats.Explore_stats.steps_executed
    traced.Live_explore.stats.Explore_stats.steps_executed;
  let s = traced.Live_explore.stats in
  match Json.parse (Obs.trace_string obs) with
  | Error err -> Alcotest.failf "live trace does not parse: %s" err
  | Ok json -> begin
      match Trace_export.validate json with
      | Error err -> Alcotest.failf "live trace does not validate: %s" err
      | Ok sm ->
          check_int "one cycle-candidate instant per candidate"
            s.Explore_stats.cycles_examined
            (Trace_export.instant_count sm "cycle_candidate");
          check_int "one pump span per fair violating candidate"
            s.Explore_stats.fair_cycles
            (Trace_export.span_count sm "pump")
    end

(* ------------------------------------------------------------------ *)
(* Progress heartbeats.                                                *)

let test_progress_jsonl () =
  let path = Filename.temp_file "slx_progress" ".jsonl" in
  let oc = open_out path in
  let reporter = Progress.create ~interval:0.0 ~json:true ~out:oc () in
  let obs = Obs.create ~progress:reporter () in
  let e = explore_register ~obs () in
  close_out oc;
  check_bool "the reporter beat at least once" true (Progress.beats reporter > 0);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  check_int "one line per beat" (Progress.beats reporter) (List.length !lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Error err -> Alcotest.failf "heartbeat is not JSON (%s): %s" err line
      | Ok j ->
          check_bool "heartbeat reports nodes" true
            (match Option.bind (Json.member "nodes" j) Json.int with
            | Some n ->
                n > 0 && n <= e.Explore.stats.Explore_stats.nodes
            | None -> false))
    !lines;
  Sys.remove path

let test_progress_off_is_free () =
  check_bool "off reporter is disabled" false (Progress.enabled Progress.off);
  check_int "off reporter never beats" 0 (Progress.beats Progress.off);
  Progress.tick Progress.off (fun () -> Alcotest.fail "sampled a disabled reporter")

let suites =
  [
    ( "obs-telemetry",
      [
        quick "ring wraparound accounting" test_ring_wraparound;
        quick "ring below capacity" test_ring_below_capacity;
        quick "decision codes" test_dec_codes;
      ] );
    ( "obs-json",
      [
        quick "parses values and escapes" test_json_parses_values;
        quick "rejects garbage" test_json_rejects_garbage;
      ] );
    ( "obs-trace",
      [
        quick "export is well-formed" test_trace_export_well_formed;
        quick "validator rejects unbalanced traces"
          test_trace_validate_rejects_unbalanced;
        quick "tracing changes no verdict" test_tracing_does_not_change_verdicts;
        quick "events reconcile with stats"
          test_traced_events_reconcile_with_stats;
        quick "steal flows are anchored" test_traced_steals_have_flow_starts;
        quick "live search traced = untraced"
          test_live_search_traced_matches_untraced;
      ] );
    ( "obs-progress",
      [
        quick "json-lines heartbeats" test_progress_jsonl;
        quick "disabled reporter is free" test_progress_off_is_free;
      ] );
  ]
