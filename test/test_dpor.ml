(* The DPOR reduction's own suite: differential validation against the
   unreduced engines over the whole audit registry (safety and
   liveness legs), the race-reversal/conflict-oracle agreement
   property, and the max-period default boundary regression.

   The differential contract (ISSUE: cycle-sound source-set DPOR):
   with [dpor] on, both engines must report identical verdicts and —
   because the leftmost branch of the reduced tree is never slept —
   byte-identical lex-least counterexample scripts and lasso
   certificates, while exploring no more maximal runs than the
   unreduced walk. *)

open Slx_sim
open Slx_core
open Slx_liveness
open Support
module Audit = Slx_analysis.Audit
module Registry = Slx_analysis.Audit_registry

(* Render a decision script through the case's invocation printer so
   script comparisons are structural on strings (robust even for
   invocation types polymorphic compare dislikes) and failures print
   the diverging schedules. *)
let show_script pp_inv ds =
  String.concat ";"
    (List.map
       (function
         | Driver.Schedule p -> Printf.sprintf "S%d" p
         | Driver.Invoke (p, i) -> Printf.sprintf "I%d(%s)" p (pp_inv i)
         | Driver.Crash p -> Printf.sprintf "C%d" p
         | Driver.Stop -> "stop")
       ds)

(* ------------------------------------------------------------------ *)
(* Safety leg: Explore with dpor on vs all reductions off, on every    *)
(* registry implementation.                                            *)

let diff_explore_case (Audit.Case c) =
  let depth = min c.Audit.c_depth 5 in
  let max_crashes = min c.Audit.c_max_crashes 1 in
  let run ~dpor ~check =
    Explore.explore ~n:c.Audit.c_n ~factory:c.Audit.c_factory
      ~invoke:c.Audit.c_invoke ~depth ~max_crashes ~por:false ~dpor ~check ()
  in
  (* Verdict identity and reduction on a passing check. *)
  let full = run ~dpor:false ~check:(fun _ -> true) in
  let red = run ~dpor:true ~check:(fun _ -> true) in
  (match (full.Explore.outcome, red.Explore.outcome) with
  | Explore.Ok a, Explore.Ok b ->
      check_bool
        (c.Audit.c_name ^ ": dpor explores a non-empty subset of the runs")
        true
        (1 <= b && b <= a)
  | _ ->
      Alcotest.failf "%s: always-true check produced a counterexample"
        c.Audit.c_name);
  (* Lex-least witness identity on an always-failing check — trivially
     invariant under commutation, and failing on every maximal run, so
     both engines must surface the leftmost maximal script. *)
  let fullx = run ~dpor:false ~check:(fun _ -> false) in
  let redx = run ~dpor:true ~check:(fun _ -> false) in
  match (fullx.Explore.witness_script, redx.Explore.witness_script) with
  | Some a, Some b ->
      Alcotest.(check string)
        (c.Audit.c_name ^ ": identical lex-least counterexample script")
        (show_script c.Audit.c_pp_inv a)
        (show_script c.Audit.c_pp_inv b)
  | _ ->
      Alcotest.failf "%s: always-false check produced no counterexample"
        c.Audit.c_name

let test_explore_differential () =
  List.iter diff_explore_case (Registry.all ())

(* ------------------------------------------------------------------ *)
(* Liveness leg: Live_explore with dpor (cycle proviso) on vs off, on  *)
(* every registry implementation.  [good] is constantly false so any   *)
(* fair cycle violates (1,1)-freedom — the reduced search must emit    *)
(* the byte-identical certificate, or agree there is none.             *)

let diff_live_case (Audit.Case c) =
  let depth = min c.Audit.c_depth 7 in
  let run ~dpor =
    Live_explore.search ~n:c.Audit.c_n ~factory:c.Audit.c_factory
      ~invoke:c.Audit.c_invoke
      ~good:(fun _ -> false)
      ~point:(Freedom.make ~l:1 ~k:1) ~depth ~dpor ()
  in
  let full = run ~dpor:false in
  let red = run ~dpor:true in
  match (full.Live_explore.outcome, red.Live_explore.outcome) with
  | Live_explore.No_fair_cycle, Live_explore.No_fair_cycle -> ()
  | Live_explore.Lasso a, Live_explore.Lasso b ->
      let show part ds =
        part ^ "=" ^ show_script c.Audit.c_pp_inv ds
      in
      Alcotest.(check string)
        (c.Audit.c_name ^ ": identical lasso stem")
        (show "stem" a.Lasso.c_stem) (show "stem" b.Lasso.c_stem);
      Alcotest.(check string)
        (c.Audit.c_name ^ ": identical lasso cycle")
        (show "cycle" a.Lasso.c_cycle)
        (show "cycle" b.Lasso.c_cycle);
      check_bool
        (c.Audit.c_name ^ ": identical certificate cells")
        true
        (a.Lasso.c_cells = b.Lasso.c_cells)
  | Live_explore.Lasso _, Live_explore.No_fair_cycle ->
      Alcotest.failf "%s: dpor search missed the lasso" c.Audit.c_name
  | Live_explore.No_fair_cycle, Live_explore.Lasso _ ->
      Alcotest.failf "%s: dpor search invented a lasso" c.Audit.c_name

let test_live_differential () =
  List.iter diff_live_case (Registry.all ())

(* The registry cases yield no lasso at their shallow depths (the
   sweep above proves agreement on [No_fair_cycle] and that the
   reduction neither invents nor misses one); the positive half of the
   certificate-identity contract is Theorem 5.2's own witness: the
   register-consensus (1,2) lasso at depth 8, which every reduction
   combination must reproduce byte-identically with fewer nodes. *)

let pp_consensus_inv (Slx_consensus.Consensus_type.Propose v) =
  "propose " ^ string_of_int v

let consensus_invoke =
  Explore.workload_invoke
    (Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1)))

let test_register_cert_identity () =
  let run ~dpor ~invoke_order =
    Live_explore.search ~n:2
      ~factory:(fun () ->
        Slx_consensus.Register_consensus.factory ~max_rounds:8 ())
      ~invoke:consensus_invoke
      ~good:(fun _ -> true)
      ~point:(Freedom.make ~l:1 ~k:2) ~depth:8 ~dpor ~invoke_order ()
  in
  let cert name r =
    match r.Live_explore.outcome with
    | Live_explore.Lasso c -> c
    | Live_explore.No_fair_cycle ->
        Alcotest.failf "register (1,2) %s: expected a lasso" name
  in
  let base = run ~dpor:false ~invoke_order:false in
  let b = cert "baseline" base in
  List.iter
    (fun (name, dpor, invoke_order) ->
      let red = run ~dpor ~invoke_order in
      let c = cert name red in
      Alcotest.(check string)
        (name ^ ": identical stem")
        (show_script pp_consensus_inv b.Lasso.c_stem)
        (show_script pp_consensus_inv c.Lasso.c_stem);
      Alcotest.(check string)
        (name ^ ": identical cycle")
        (show_script pp_consensus_inv b.Lasso.c_cycle)
        (show_script pp_consensus_inv c.Lasso.c_cycle);
      check_bool (name ^ ": identical cells") true
        (b.Lasso.c_cells = c.Lasso.c_cells);
      check_bool (name ^ ": a strict reduction") true
        (red.Live_explore.stats.Explore_stats.nodes
        < base.Live_explore.stats.Explore_stats.nodes))
    [
      ("dpor", true, false);
      ("dpor+invoke-order", true, true);
    ]

(* ------------------------------------------------------------------ *)
(* QCheck: [Dpor.wakes] wakes a sleeper iff some pair of raw accesses  *)
(* is a genuine observed conflict — the same oracle the happens-before *)
(* certifier cross-checks runs with ([Hb.observed_conflict] is the     *)
(* same binding).  So every race reversal is a certifiable conflict.   *)

let accesses_gen =
  QCheck2.Gen.(
    list_size (int_range 0 4)
      (map
         (fun (o, w) -> { Runtime.obj = o; write = w })
         (pair (int_range 0 3) bool)))

let qcheck_wakes_iff_conflict =
  QCheck2.Test.make ~count:500
    ~name:"Dpor.wakes <=> an Hb-observed conflict pair exists"
    QCheck2.Gen.(pair accesses_gen accesses_gen)
    (fun (observed_raw, pending_raw) ->
      let observed = Runtime.of_accesses observed_raw in
      let pending = Runtime.of_accesses pending_raw in
      let wakes = Dpor.wakes ~observed ~pending:(Some pending) in
      let conflict =
        List.exists
          (fun a -> List.exists (Dpor.observed_conflict a) pending_raw)
          observed_raw
      in
      let same_oracle =
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                Dpor.observed_conflict a b
                = Slx_analysis.Hb.observed_conflict a b)
              pending_raw)
          observed_raw
      in
      wakes = conflict && same_oracle)

let qcheck_unknown_pending_always_wakes =
  QCheck2.Test.make ~count:100
    ~name:"Dpor.wakes is conservative on an unknown pending footprint"
    accesses_gen
    (fun observed_raw ->
      Dpor.wakes ~observed:(Runtime.of_accesses observed_raw) ~pending:None)

(* ------------------------------------------------------------------ *)
(* max_period default boundary (satellite: ceil(depth / 2)).  A solo   *)
(* looper whose operation completes every 3 scheduling grants pumps a  *)
(* period-4 tick cycle (I1,S1,S1,S1).  At depth 9 two repetitions fit  *)
(* (2 * 4 <= 8) and the odd-depth default max_period = ceil(9/2) = 5   *)
(* admits the period — the truncating depth/2 = 4 would too, but at    *)
(* depth 9 with period as large as 4 only the ceiling keeps headroom;  *)
(* the sharper check is that an explicit max_period below the true     *)
(* period silently misses the lasso, which is exactly what a floored   *)
(* default would do to a boundary-period instance.                     *)

type looper_inv = Go
type looper_res = Done

(* Three declared atomic reads per operation: invocation runs to the
   first suspension, then each grant executes one action — the
   operation responds on its third grant, and the shared state and
   per-tick cells are identical across repetitions, so the cycle pumps
   forever. *)
let looper_factory ~n:_ =
  let r = ref 0 in
  let id = Runtime.register_object (fun () -> Runtime.hash_value !r) in
  let read () =
    Runtime.atomic_access ~obj:id ~write:false (fun () ->
        Runtime.touch ~obj:id ~write:false;
        !r)
  in
  fun ~proc:_ Go ->
    ignore (read ());
    ignore (read ());
    ignore (read ());
    Done

let looper_search ?max_period ~depth () =
  Live_explore.search ~n:1
    ~factory:(fun () -> looper_factory)
    ~invoke:(fun _ _ -> Some Go)
    ~good:(fun Done -> false)
    ~point:(Freedom.make ~l:1 ~k:1) ~depth ?max_period ()

let test_max_period_default_finds_boundary_lasso () =
  let r = looper_search ~depth:9 () in
  match r.Live_explore.outcome with
  | Live_explore.Lasso c ->
      check_int "the looper's cycle has period 4"
        4
        (List.length c.Lasso.c_cycle);
      (* And the certificate replays. *)
      (match Lasso.pump ~factory:looper_factory ~repetitions:3 c with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "looper pump failed: %s" e)
  | Live_explore.No_fair_cycle ->
      Alcotest.fail
        "depth-9 default max_period must admit the period-4 lasso"

let test_max_period_below_period_misses_lasso () =
  let r = looper_search ~max_period:3 ~depth:9 () in
  match r.Live_explore.outcome with
  | Live_explore.No_fair_cycle -> ()
  | Live_explore.Lasso _ ->
      Alcotest.fail "max_period 3 cannot detect a period-4 cycle"

let suites =
  [
    ( "dpor",
      [
        quick "explore differential over the audit registry"
          test_explore_differential;
        quick "live-explore differential over the audit registry"
          test_live_differential;
        quick "register (1,2) certificate is identical under reduction"
          test_register_cert_identity;
        quick "default max_period admits the boundary period"
          test_max_period_default_finds_boundary_lasso;
        quick "a max_period below the true period misses the lasso"
          test_max_period_below_period_misses_lasso;
      ]
      @ qcheck
          [ qcheck_wakes_iff_conflict; qcheck_unknown_pending_always_wakes ] );
  ]
