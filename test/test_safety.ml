open Slx_history
open Slx_safety
open Support

module Lin = Linearizability.Make (Register_type)
module Sc = Sequential_consistency.Make (Register_type)

let inv p i = Event.Invocation (p, i)
let res p r = Event.Response (p, r)

let read = Register_type.Read
let write v = Register_type.Write v
let ok = Register_type.Ok
let value v = Register_type.Val v

let h_of = History.of_list

let test_sequential_history_linearizable () =
  let h =
    h_of [ inv 1 (write 1); res 1 ok; inv 2 read; res 2 (value 1) ]
  in
  check_bool "sequential legal history" true (Lin.check h);
  check_bool "witness exists" true
    (match Lin.witness h with Ok w -> Option.is_some w | Error _ -> false)

let test_stale_read_not_linearizable () =
  (* write(1) completes before the read is invoked, yet the read
     returns the initial value. *)
  let h =
    h_of [ inv 1 (write 1); res 1 ok; inv 2 read; res 2 (value 0) ]
  in
  check_bool "stale read rejected" false (Lin.check h)

let test_concurrent_read_both_orders () =
  (* The read overlaps the write: both val(0) and val(1) are valid. *)
  let old_value =
    h_of [ inv 1 (write 1); inv 2 read; res 2 (value 0); res 1 ok ]
  in
  let new_value =
    h_of [ inv 1 (write 1); inv 2 read; res 2 (value 1); res 1 ok ]
  in
  check_bool "overlapping read of old value" true (Lin.check old_value);
  check_bool "overlapping read of new value" true (Lin.check new_value)

let test_pending_write_takes_effect () =
  (* The write never completes but its value is visible: the checker
     must be allowed to linearize the pending operation. *)
  let h = h_of [ inv 1 (write 1); inv 2 read; res 2 (value 1) ] in
  check_bool "pending write took effect" true (Lin.check h)

let test_pending_write_dropped () =
  let h = h_of [ inv 1 (write 1); inv 2 read; res 2 (value 0) ] in
  check_bool "pending write dropped" true (Lin.check h)

let test_impossible_read_value () =
  let h = h_of [ inv 1 read; res 1 (value 9) ] in
  check_bool "read of never-written value rejected" false (Lin.check h)

let test_sc_weaker_than_lin () =
  (* Stale read: not linearizable, but sequentially consistent — the
     read may be reordered before the write. *)
  let h =
    h_of [ inv 1 (write 1); res 1 ok; inv 2 read; res 2 (value 0) ]
  in
  check_bool "not linearizable" false (Lin.check h);
  check_bool "sequentially consistent" true (Sc.check h)

let test_sc_violation () =
  (* p2 reads 1 then 0 while p1 writes 1 once: no total order respects
     p2's program order. *)
  let h =
    h_of
      [
        inv 1 (write 1);
        res 1 ok;
        inv 2 read;
        res 2 (value 1);
        inv 2 read;
        res 2 (value 0);
      ]
  in
  check_bool "new-then-old reads rejected" false (Sc.check h);
  check_bool "a fortiori not linearizable" false (Lin.check h)

let test_crash_leaves_pending () =
  let h =
    h_of
      [ inv 1 (write 1); Event.Crash 1; inv 2 read; res 2 (value 1) ]
  in
  check_bool "crashed pending write may take effect" true (Lin.check h)

(* Consensus-type linearizability. *)

module Ctype = Slx_consensus.Consensus_type
module Clin = Linearizability.Make (Ctype.Self)

let cinv p v = Event.Invocation (p, Ctype.Propose v)
let cres p v = Event.Response (p, Ctype.Decided v)

let test_consensus_linearizable () =
  let h = h_of [ cinv 1 0; cinv 2 1; cres 1 0; cres 2 0 ] in
  check_bool "agreeing on first value" true (Clin.check h);
  let h' = h_of [ cinv 1 0; cinv 2 1; cres 1 1; cres 2 1 ] in
  check_bool "agreeing on second value" true (Clin.check h')

let test_consensus_disagreement_rejected () =
  let h = h_of [ cinv 1 0; cinv 2 1; cres 1 0; cres 2 1 ] in
  check_bool "disagreement rejected" false (Clin.check h)

let test_consensus_late_proposer_adopts () =
  (* p1 decides 0 and completes; p2 proposes later and must decide 0. *)
  let h = h_of [ cinv 1 0; cres 1 0; cinv 2 1; cres 2 1 ] in
  check_bool "late proposer deciding own value rejected" false (Clin.check h);
  let h' = h_of [ cinv 1 0; cres 1 0; cinv 2 1; cres 2 0 ] in
  check_bool "late proposer adopting accepted" true (Clin.check h')

(* The Property framework. *)

let test_property_combinators () =
  let always = Property.make ~name:"true" (fun (_ : int) -> true) in
  let even = Property.make ~name:"even" (fun x -> x mod 2 = 0) in
  let both = Property.conj ~name:"both" always even in
  check_bool "conj holds" true (Property.holds both 4);
  check_bool "conj fails" false (Property.holds both 3);
  check_bool "name" true (Property.name both = "both");
  let positive_even = Property.restrict ~name:"pos-even" (fun x -> x > 0) even in
  check_bool "restrict" false (Property.holds positive_even (-2));
  check_bool "restrict holds" true (Property.holds positive_even 2)

let test_prefix_closure_helpers () =
  let lin = Lin.property in
  let good_h =
    h_of [ inv 1 (write 1); res 1 ok; inv 2 read; res 2 (value 1) ]
  in
  check_bool "prefix-closed at sample" true
    (Property.is_prefix_closed_on lin good_h);
  check_bool "all prefixes hold" true
    (Property.holds_on_all_prefixes lin good_h);
  let bad_h =
    h_of [ inv 1 (write 1); res 1 ok; inv 2 read; res 2 (value 0) ]
  in
  (* Vacuous: the sample itself is not in the property. *)
  check_bool "vacuous on non-member" true
    (Property.is_prefix_closed_on lin bad_h);
  check_bool "not all prefixes hold" false
    (Property.holds_on_all_prefixes lin bad_h)

(* Property-based tests. *)

let prop_lin_implies_sc =
  QCheck2.Test.make ~name:"linearizable => sequentially consistent"
    ~count:150 ~print:register_history_print
    (well_formed_register_history_gen ~n:3 ~len:10)
    (fun h -> (not (Lin.check h)) || Sc.check h)

let prop_lin_prefix_closed =
  QCheck2.Test.make ~name:"linearizability is prefix-closed" ~count:100
    ~print:register_history_print
    (well_formed_register_history_gen ~n:3 ~len:8)
    (fun h -> Property.is_prefix_closed_on Lin.property h)

let sequential_history_gen ~len =
  (* A legal sequential register history generated from the spec. *)
  QCheck2.Gen.(
    let* cmds = list_size (return len) (pair (int_range 1 3) (int_range 0 3)) in
    let add (h, st) (p, roll) =
      let i = if roll = 0 then read else write roll in
      match Register_type.seq i st with
      | [ (st', r) ] ->
          (History.append (History.append h (inv p i)) (res p r), st')
      | _ -> assert false
    in
    let h, _ = List.fold_left add (History.empty, Register_type.initial) cmds in
    return h)

let prop_sequential_legal_linearizable =
  QCheck2.Test.make ~name:"legal sequential histories linearizable"
    ~count:100 ~print:register_history_print (sequential_history_gen ~len:8)
    Lin.check

let prop_witness_matches_check =
  QCheck2.Test.make ~name:"witness is Some iff check" ~count:150
    ~print:register_history_print
    (well_formed_register_history_gen ~n:3 ~len:8)
    (fun h ->
      (match Lin.witness h with Ok w -> Option.is_some w | Error _ -> false)
      = Lin.check h)


(* Search-engine contract: hot-path regression and the op-count limit. *)

let sequential_register_history ~ops =
  (* [ops] completed operations, alternating writes and reads across
     three processes, every response legal. *)
  let events = ref [] in
  for k = ops - 1 downto 0 do
    let p = 1 + (k mod 3) in
    if k mod 2 = 0 then events := inv p (write k) :: res p ok :: !events
    else events := inv p read :: res p (value (k - 1)) :: !events
  done;
  h_of !events

let test_long_history_linearizes_quickly () =
  (* Regression for the search hot path: [ready] used to rebuild the
     op array and rescan [precedes] at every probe, making 20-op
     histories crawl.  With precomputed predecessor masks this is
     instant; Alcotest's own timeout is the bound. *)
  let h = sequential_register_history ~ops:20 in
  check_bool "20-op history linearizable" true (Lin.check h);
  check_bool "20-op witness found" true
    (match Lin.witness h with Ok w -> Option.is_some w | Error _ -> false)

let test_too_many_ops_is_typed_error () =
  (* Beyond [Lin_search.max_ops] the bitmask search cannot run.  This
     used to raise [Invalid_argument] out of the checker; it is now a
     typed error, and [check] fails closed instead of crashing. *)
  let ops = Lin_search.max_ops + 1 in
  let h = sequential_register_history ~ops in
  (match Lin.witness h with
  | Error (Lin_search.Too_many_ops n) -> check_int "reported op count" ops n
  | Ok _ -> Alcotest.fail "expected Too_many_ops");
  check_bool "check fails closed" false (Lin.check h);
  check_bool "SC fails closed too" false (Sc.check h)

(* Quiescent consistency: the third condition. *)

module Qc = Quiescent_consistency.Make (Register_type)

let test_qc_respects_quiescent_separation () =
  (* write(1) completes, the system quiesces, then a stale read: QC
     must reject it (and SC accepts it): SC and QC are incomparable,
     direction 1. *)
  let h =
    h_of [ inv 1 (write 1); res 1 ok; inv 2 read; res 2 (value 0) ]
  in
  check_bool "stale read after quiescence rejected by QC" false (Qc.check h);
  check_bool "but accepted by SC" true (Sc.check h)

let test_qc_ignores_program_order () =
  (* p1's write stays pending throughout; p2 reads 1 then 0.  No
     quiescent point separates anything, so QC may reorder freely -
     while SC is stuck on p2's program order: direction 2. *)
  let h =
    h_of
      [
        inv 1 (write 1);
        inv 2 read; res 2 (value 1);
        inv 2 read; res 2 (value 0);
      ]
  in
  check_bool "QC accepts reordering across concurrency" true (Qc.check h);
  check_bool "SC rejects the program-order violation" false (Sc.check h)

let test_qc_sequential_histories () =
  let h =
    h_of [ inv 1 (write 1); res 1 ok; inv 2 read; res 2 (value 1) ]
  in
  check_bool "legal sequential history is QC" true (Qc.check h)

let prop_lin_implies_qc =
  QCheck2.Test.make ~name:"linearizable => quiescently consistent"
    ~count:150 ~print:register_history_print
    (well_formed_register_history_gen ~n:3 ~len:10)
    (fun h -> (not (Lin.check h)) || Qc.check h)

let suites =
  [
    ( "safety",
      [
        quick "sequential history linearizable" test_sequential_history_linearizable;
        quick "stale read not linearizable" test_stale_read_not_linearizable;
        quick "concurrent read both orders" test_concurrent_read_both_orders;
        quick "pending write takes effect" test_pending_write_takes_effect;
        quick "pending write dropped" test_pending_write_dropped;
        quick "impossible read value" test_impossible_read_value;
        quick "SC weaker than linearizability" test_sc_weaker_than_lin;
        quick "SC violation" test_sc_violation;
        quick "crash leaves pending" test_crash_leaves_pending;
        quick "consensus linearizable" test_consensus_linearizable;
        quick "consensus disagreement rejected" test_consensus_disagreement_rejected;
        quick "consensus late proposer adopts" test_consensus_late_proposer_adopts;
        quick "property combinators" test_property_combinators;
        quick "prefix closure helpers" test_prefix_closure_helpers;
        quick "20-op history linearizes quickly" test_long_history_linearizes_quickly;
        quick "too many ops is a typed error" test_too_many_ops_is_typed_error;
        quick "QC respects quiescent separation" test_qc_respects_quiescent_separation;
        quick "QC ignores program order" test_qc_ignores_program_order;
        quick "QC on sequential histories" test_qc_sequential_histories;
      ]
      @ qcheck
          [
            prop_lin_implies_sc;
            prop_lin_implies_qc;
            prop_lin_prefix_closed;
            prop_sequential_legal_linearizable;
            prop_witness_matches_check;
          ] );
  ]
