open Slx_history
open Support

(* Shorthand constructors over the register type. *)
let inv p i = Event.Invocation (p, i)
let res p r = Event.Response (p, r)
let crash p = Event.Crash p

let read = Register_type.Read
let write v = Register_type.Write v
let ok = Register_type.Ok
let value v = Register_type.Val v

let h_of = History.of_list

let sample =
  (* p1: write(1) -> ok; p2: read -> val(1); p1: read pending. *)
  h_of
    [
      inv 1 (write 1);
      inv 2 read;
      res 1 ok;
      res 2 (value 1);
      inv 1 read;
    ]

let test_roundtrip () =
  let events = History.to_list sample in
  check_bool "of_list/to_list roundtrip" true
    (History.equal ~inv:( = ) ~res:( = ) sample (h_of events));
  check_int "length" 5 (History.length sample)

let test_append () =
  let h = History.append History.empty (inv 1 read) in
  check_int "singleton length" 1 (History.length h);
  check_bool "not empty" false (History.is_empty h);
  check_bool "empty is empty" true (History.is_empty History.empty)

let test_nth () =
  check_bool "nth 0" true (History.nth sample 0 = inv 1 (write 1));
  check_bool "nth 4" true (History.nth sample 4 = inv 1 read);
  Alcotest.check_raises "nth out of bounds"
    (Invalid_argument "History.nth: index out of bounds") (fun () ->
      ignore (History.nth sample 5))

let test_project () =
  let p1 = History.project sample 1 in
  check_int "p1 events" 3 (History.length p1);
  check_bool "p1 events belong to p1" true
    (List.for_all (fun e -> Event.proc e = 1) (History.to_list p1));
  let p3 = History.project sample 3 in
  check_bool "absent process projects to empty" true (History.is_empty p3)

let test_procs_crashed () =
  let h = h_of [ inv 1 read; crash 1; inv 2 read ] in
  check_bool "procs" true (Proc.Set.equal (History.procs h) (Proc.Set.of_list [ 1; 2 ]));
  check_bool "crashed" true (Proc.Set.equal (History.crashed h) (Proc.Set.singleton 1));
  check_bool "p1 not correct" false (History.is_correct h 1);
  check_bool "p2 correct" true (History.is_correct h 2)

let test_well_formed_positive () =
  check_bool "sample is well-formed" true (History.is_well_formed sample);
  check_bool "empty is well-formed" true (History.is_well_formed History.empty);
  check_bool "crash while pending ok" true
    (History.is_well_formed (h_of [ inv 1 read; crash 1 ]))

let test_well_formed_negative () =
  check_bool "response without invocation" false
    (History.is_well_formed (h_of [ res 1 ok ]));
  check_bool "double invocation" false
    (History.is_well_formed (h_of [ inv 1 read; inv 1 read ]));
  check_bool "event after crash" false
    (History.is_well_formed (h_of [ crash 1; inv 1 read ]));
  check_bool "double response" false
    (History.is_well_formed (h_of [ inv 1 read; res 1 ok; res 1 ok ]))

let test_pending () =
  check_bool "p1 pending" true (History.pending sample 1 = Some read);
  check_bool "p2 not pending" true (History.pending sample 2 = None);
  let crashed_pending = h_of [ inv 1 read; crash 1 ] in
  check_bool "crashed process not pending" true
    (History.pending crashed_pending 1 = None);
  check_bool "pending_procs" true
    (Proc.Set.equal (History.pending_procs sample) (Proc.Set.singleton 1))

let test_prefixes () =
  let ps = History.prefixes sample in
  check_int "number of prefixes" 6 (List.length ps);
  check_bool "first prefix empty" true (History.is_empty (List.hd ps));
  check_bool "all are prefixes" true
    (List.for_all
       (fun p -> History.is_prefix ~inv:( = ) ~res:( = ) p sample)
       ps);
  check_bool "sample not prefix of shorter" false
    (History.is_prefix ~inv:( = ) ~res:( = ) sample (History.prefix sample 3))

let test_concat_rename () =
  let h1 = h_of [ inv 1 read ] and h2 = h_of [ res 1 ok ] in
  let h = History.concat h1 h2 in
  check_int "concat length" 2 (History.length h);
  check_bool "concat well-formed" true (History.is_well_formed h);
  let swapped = History.rename (fun p -> 3 - p) sample in
  check_bool "rename twice is identity" true
    (History.equal ~inv:( = ) ~res:( = ) sample
       (History.rename (fun p -> 3 - p) swapped));
  check_bool "rename moves events" true
    (History.length (History.project swapped 2) = 3)

let test_responses_invocations_of () =
  check_bool "responses of p1" true
    (History.responses_of sample 1 = [ ok ]);
  check_bool "invocations of p1" true
    (History.invocations_of sample 1 = [ write 1; read ]);
  check_int "count invocations" 3 (History.count Event.is_invocation sample)

(* Operations view. *)

let test_ops_extraction () =
  let ops = Op.of_history sample in
  check_int "three operations" 3 (List.length ops);
  let completed = List.filter Op.is_complete ops in
  check_int "two completed" 2 (List.length completed);
  let pending = List.filter (fun o -> not (Op.is_complete o)) ops in
  (match pending with
  | [ op ] ->
      check_int "pending proc" 1 op.Op.proc;
      check_bool "pending inv" true (op.Op.inv = read)
  | _ -> Alcotest.fail "expected exactly one pending op");
  ()

let test_ops_precedence () =
  (* p1's write completes (index 2) before p1's read is invoked (4). *)
  let ops = Op.of_history sample in
  let find p i =
    List.find (fun o -> o.Op.proc = p && o.Op.inv_index = i) ops
  in
  let w1 = find 1 0 and r2 = find 2 1 and r1 = find 1 4 in
  check_bool "w1 precedes r1" true (Op.precedes w1 r1);
  check_bool "w1 concurrent with r2" true (Op.concurrent w1 r2);
  check_bool "pending precedes nothing" false (Op.precedes r1 w1);
  check_bool "r2 precedes r1" true (Op.precedes r2 r1)

(* Event helpers. *)

let test_event_helpers () =
  let e = inv 2 read in
  check_int "proc" 2 (Event.proc e);
  check_bool "is_invocation" true (Event.is_invocation e);
  check_bool "invocation payload" true (Event.invocation e = Some read);
  check_bool "response payload none" true (Event.response e = None);
  check_bool "crash helpers" true (Event.is_crash (crash 1));
  let renamed = Event.rename (fun _ -> 7) e in
  check_int "renamed proc" 7 (Event.proc renamed)

(* Object_type helpers. *)

let test_object_type_sequential () =
  let tp : _ Object_type.t = (module Register_type) in
  let results =
    Object_type.sequential_responses tp [ write 3; read; write 5; read ]
  in
  (match results with
  | [ (st, responses) ] ->
      check_int "final state" 5 st;
      check_bool "responses" true
        (responses = [ ok; value 3; ok; value 5 ])
  | _ -> Alcotest.fail "register spec is deterministic");
  check_bool "legal sequence accepted" true
    (Object_type.legal_sequential tp [ (write 3, ok); (read, value 3) ]);
  check_bool "illegal sequence rejected" false
    (Object_type.legal_sequential tp [ (write 3, ok); (read, value 4) ])

(* Property-based tests. *)

let prop_roundtrip =
  QCheck2.Test.make ~name:"of_list(to_list h) = h" ~count:100
    ~print:register_history_print
    (well_formed_register_history_gen ~n:3 ~len:20)
    (fun h ->
      History.equal ~inv:( = ) ~res:( = ) h (h_of (History.to_list h)))

let prop_generator_well_formed =
  QCheck2.Test.make ~name:"generated histories are well-formed" ~count:200
    ~print:register_history_print
    (well_formed_register_history_gen ~n:4 ~len:30)
    History.is_well_formed

let prop_prefix_count =
  QCheck2.Test.make ~name:"|prefixes h| = |h| + 1" ~count:100
    ~print:register_history_print
    (well_formed_register_history_gen ~n:3 ~len:15)
    (fun h -> List.length (History.prefixes h) = History.length h + 1)

let prop_prefixes_well_formed =
  QCheck2.Test.make ~name:"prefixes of well-formed are well-formed" ~count:100
    ~print:register_history_print
    (well_formed_register_history_gen ~n:3 ~len:15)
    (fun h -> List.for_all History.is_well_formed (History.prefixes h))

let prop_project_partition =
  QCheck2.Test.make ~name:"projections partition the events" ~count:100
    ~print:register_history_print
    (well_formed_register_history_gen ~n:4 ~len:20)
    (fun h ->
      let total =
        List.fold_left
          (fun acc p -> acc + History.length (History.project h p))
          0 (Proc.all ~n:4)
      in
      total = History.length h)

let prop_ops_complete_have_response_after_inv =
  QCheck2.Test.make ~name:"completed ops: inv index < res index" ~count:100
    ~print:register_history_print
    (well_formed_register_history_gen ~n:3 ~len:25)
    (fun h ->
      List.for_all
        (fun op ->
          match op.Op.res_index with
          | Some r -> op.Op.inv_index < r
          | None -> true)
        (Op.of_history h))

let suites =
  [
    ( "history",
      [
        quick "roundtrip" test_roundtrip;
        quick "append" test_append;
        quick "nth" test_nth;
        quick "project" test_project;
        quick "procs and crashes" test_procs_crashed;
        quick "well-formed positive" test_well_formed_positive;
        quick "well-formed negative" test_well_formed_negative;
        quick "pending" test_pending;
        quick "prefixes" test_prefixes;
        quick "concat and rename" test_concat_rename;
        quick "responses and invocations" test_responses_invocations_of;
        quick "ops extraction" test_ops_extraction;
        quick "ops precedence" test_ops_precedence;
        quick "event helpers" test_event_helpers;
        quick "object type sequential" test_object_type_sequential;
      ]
      @ qcheck
          [
            prop_roundtrip;
            prop_generator_well_formed;
            prop_prefix_count;
            prop_prefixes_well_formed;
            prop_project_partition;
            prop_ops_complete_have_response_after_inv;
          ] );
  ]
