open Slx_history
open Slx_sim
open Slx_liveness
open Slx_tm
open Support

let inv p i = Event.Invocation (p, i)
let res p r = Event.Response (p, r)
let h_of = History.of_list

let start p = inv p Tm_type.Start
let ok p = res p Tm_type.Ok
let read p x = inv p (Tm_type.Read x)
let value p v = res p (Tm_type.Val v)
let write p x v = inv p (Tm_type.Write (x, v))
let tryc p = inv p Tm_type.Try_commit
let committed p = res p Tm_type.Committed
let aborted p = res p Tm_type.Aborted

(* A committed serial transaction writing x0 := v. *)
let serial_write p v =
  [ start p; ok p; write p 0 v; ok p; tryc p; committed p ]

(* ------------------------------------------------------------------ *)
(* Transaction extraction.                                             *)

let test_transaction_extraction () =
  let h =
    h_of
      (serial_write 1 5
      @ [ start 2; ok 2; read 2 0; value 2 5; tryc 2 ]
      @ [ start 1; ok 1 ])
  in
  let txns = Transaction.of_history h in
  check_int "three transactions" 3 (List.length txns);
  (match txns with
  | [ t1; t2; t3 ] ->
      check_bool "t1 committed" true (t1.Transaction.status = Transaction.Committed);
      check_int "t1 is p1's first" 1 t1.Transaction.index;
      check_bool "t1 writes x0=5" true (Transaction.writes t1 = [ (0, 5) ]);
      check_bool "t2 commit-pending" true
        (t2.Transaction.status = Transaction.Commit_pending);
      check_bool "t2 read recorded" true
        (t2.Transaction.ops = [ Transaction.Read_op (0, 5) ]);
      check_bool "t3 live" true (t3.Transaction.status = Transaction.Live);
      check_int "t3 is p1's second" 2 t3.Transaction.index;
      check_bool "t1 precedes t2" true (Transaction.precedes t1 t2);
      check_bool "t2 concurrent with t3" true (Transaction.concurrent t2 t3)
  | _ -> Alcotest.fail "unexpected transaction count");
  ()

let test_abort_mid_transaction () =
  let h = h_of [ start 1; ok 1; write 1 0 3; aborted 1 ] in
  match Transaction.of_history h with
  | [ t ] ->
      check_bool "aborted" true (t.Transaction.status = Transaction.Aborted);
      check_bool "aborted write not recorded as completed op" true
        (t.Transaction.ops = [])
  | _ -> Alcotest.fail "expected one transaction"

(* ------------------------------------------------------------------ *)
(* Opacity checker.                                                    *)

let test_opacity_serial () =
  let h = h_of (serial_write 1 5 @ serial_write 2 7) in
  check_bool "serial committed history opaque" true (Opacity.check h)

let test_opacity_read_committed () =
  let h =
    h_of
      (serial_write 1 5
      @ [ start 2; ok 2; read 2 0; value 2 5; tryc 2; committed 2 ])
  in
  check_bool "reading committed value opaque" true (Opacity.check h)

let test_opacity_dirty_read () =
  (* T2 reads T1's uncommitted write and T1 aborts. *)
  let h =
    h_of
      [
        start 1; ok 1; write 1 0 5; ok 1;
        start 2; ok 2; read 2 0; value 2 5;
        tryc 1; aborted 1;
      ]
  in
  check_bool "dirty read not opaque" false (Opacity.check_final h)

let test_opacity_aborted_must_be_consistent () =
  (* T1 commits x0:=1, x1:=1 atomically; the aborted T2 reads x0 = 1
     but x1 = 0: no serialization point justifies both. *)
  let h =
    h_of
      [
        start 1; ok 1; write 1 0 1; ok 1; write 1 1 1; ok 1;
        start 2; ok 2;
        tryc 1; committed 1;
        read 2 0; value 2 1;
        read 2 1; value 2 0;
        tryc 2; aborted 2;
      ]
  in
  check_bool "inconsistent aborted read not opaque" false
    (Opacity.check_final h);
  (* ... but strict serializability, which ignores aborted reads,
     accepts it: opacity is strictly stronger. *)
  check_bool "strict serializability accepts it" true (Serializability.strict h)

let test_opacity_commit_pending_completion () =
  (* T1 is commit-pending; T2 reads its value.  Opaque via the
     completion that commits T1. *)
  let h =
    h_of
      [
        start 1; ok 1; write 1 0 9; ok 1; tryc 1;
        start 2; ok 2; read 2 0; value 2 9;
      ]
  in
  check_bool "commit-pending completion found" true (Opacity.check_final h)

let test_opacity_live_writes_invisible () =
  (* T1 is live (no tryC): its writes may not be read. *)
  let h =
    h_of
      [
        start 1; ok 1; write 1 0 9; ok 1;
        start 2; ok 2; read 2 0; value 2 9;
      ]
  in
  check_bool "live transaction's write invisible" false
    (Opacity.check_final h)

let test_opacity_real_time_respected () =
  (* T1 commits x0:=5 and completes before T2 starts; T2 reads 0. *)
  let h =
    h_of
      (serial_write 1 5
      @ [ start 2; ok 2; read 2 0; value 2 0; tryc 2; aborted 2 ])
  in
  check_bool "stale read after commit not opaque" false
    (Opacity.check_final h)

let test_opacity_write_skew_style () =
  (* Two concurrent increments both reading 0 and both committing 1:
     serializable orders make the second read stale — not opaque. *)
  let h =
    h_of
      [
        start 1; ok 1; start 2; ok 2;
        read 1 0; value 1 0; read 2 0; value 2 0;
        write 1 0 1; ok 1; write 2 0 1; ok 2;
        tryc 1; committed 1; tryc 2; committed 2;
      ]
  in
  check_bool "lost update not opaque" false (Opacity.check_final h);
  (* If the second commit is an abort instead, all is well. *)
  let h' =
    h_of
      [
        start 1; ok 1; start 2; ok 2;
        read 1 0; value 1 0; read 2 0; value 2 0;
        write 1 0 1; ok 1; write 2 0 1; ok 2;
        tryc 1; committed 1; tryc 2; aborted 2;
      ]
  in
  check_bool "conflict-abort is opaque" true (Opacity.check h')

(* ------------------------------------------------------------------ *)
(* The S' timestamp rule (Section 5.3).                                *)

(* Three same-index transactions, fully concurrent, all invoking tryC
   after all three starts responded. *)
let s_prime_trigger ~outcome3 =
  [
    start 1; ok 1; start 2; ok 2; start 3; ok 3;
    tryc 1; aborted 1; tryc 2; aborted 2; tryc 3; outcome3;
  ]

let test_s_prime_rule_violation () =
  let bad = h_of (s_prime_trigger ~outcome3:(committed 3)) in
  check_bool "committing a forbidden group violates the rule" false
    (S_prime.timestamp_rule bad);
  check_int "one violating group" 1 (List.length (S_prime.violating_groups bad));
  let good = h_of (s_prime_trigger ~outcome3:(aborted 3)) in
  check_bool "aborting the whole group satisfies the rule" true
    (S_prime.timestamp_rule good);
  check_bool "S' holds on the aborting history" true (S_prime.check good)

let test_s_prime_rule_not_triggered_when_sequential () =
  (* Same-index transactions that are NOT concurrent don't trigger. *)
  let h = h_of (serial_write 1 1 @ serial_write 2 2 @ serial_write 3 3) in
  check_bool "sequential same-index transactions may commit" true
    (S_prime.timestamp_rule h);
  check_bool "S' holds" true (S_prime.check h)

let test_s_prime_rule_needs_late_tryc () =
  (* Three concurrent transactions, but p3 invokes tryC before the
     other two starts respond: the rule does not constrain it. *)
  let h =
    h_of
      [
        start 3; ok 3; tryc 3;
        start 1; ok 1; start 2; ok 2;
        res 3 Tm_type.Committed;
        tryc 1; aborted 1; tryc 2; aborted 2;
      ]
  in
  check_bool "early tryC escapes the rule" true (S_prime.timestamp_rule h)

(* ------------------------------------------------------------------ *)
(* I(1,2): Algorithm 1.                                                *)

let run_i12 ~n ~seed ~max_steps ?procs () =
  Runner.run ~n ~factory:(I12.factory ~vars:2)
    ~driver:(Tm_workload.random ?procs ~seed ())
    ~max_steps ()

let total_commits h =
  List.fold_left (fun acc (_, c) -> acc + c) 0 (Tm_adversary.commits h)

let test_i12_solo_commits () =
  let r =
    Runner.run ~n:3 ~factory:(I12.factory ~vars:2)
      ~driver:(Tm_workload.round_robin ~procs:[ 1 ] ())
      ~max_steps:100 ()
  in
  check_bool "solo process commits" true
    (total_commits r.Run_report.history > 0);
  check_bool "history opaque" true (Opacity.check r.Run_report.history);
  check_bool "S' holds" true (S_prime.check r.Run_report.history)

let test_i12_two_procs_opaque_and_live () =
  List.iter
    (fun seed ->
      let r = run_i12 ~n:2 ~seed ~max_steps:160 () in
      check_bool
        (Printf.sprintf "opacity (seed %d)" seed)
        true
        (Opacity.check r.Run_report.history);
      check_bool "S'" true (S_prime.check r.Run_report.history);
      check_bool "(1,2)-freedom" true
        (Freedom.holds ~good:Tm_type.good r (Freedom.make ~l:1 ~k:2)))
    [ 1; 2; 3 ]

let test_i12_two_of_three_commit () =
  (* n = 3 but only two processes participate: the timestamp count
     cannot reach 3, so commits flow — the (1,2)-freedom of Lemma
     5.4. *)
  let r =
    Runner.run ~n:3 ~factory:(I12.factory ~vars:2)
      ~driver:(Tm_workload.random ~procs:[ 1; 2 ] ~seed:5 ())
      ~max_steps:300 ()
  in
  check_bool "commits happen with two active" true
    (total_commits r.Run_report.history > 0);
  check_bool "S' (final) holds" true (S_prime.check_final r.Run_report.history)

let test_i12_three_way_adversary_starves () =
  (* The Section 5.3 adversary: all three start, then all tryC — the
     timestamp rule fires every round, so nobody ever commits. *)
  let r = Tm_adversary.run_three_way ~factory:(I12.factory ~vars:2) ~max_steps:600 in
  check_int "zero commits" 0 (total_commits r.Run_report.history);
  check_bool "S' holds throughout" true (S_prime.check_final r.Run_report.history);
  check_bool "(1,3)-freedom violated" false
    (Freedom.holds ~good:Tm_type.good r (Freedom.make ~l:1 ~k:3));
  check_bool "(2,2) vacuous (three active)" true
    (Freedom.holds ~good:Tm_type.good r (Freedom.make ~l:2 ~k:2));
  check_bool "bounded fair" true (Fairness.is_bounded_fair r)

let test_i12_local_progress_adversary () =
  (* The Section 4.1 adversary against I(1,2) with n = 2: p2 commits
     forever, p1 never does — local progress fails, (1,2) holds. *)
  let r =
    Tm_adversary.run_local_progress ~factory:(I12.factory ~vars:1)
      ~max_steps:600 ()
  in
  let commits = Tm_adversary.commits r.Run_report.history in
  check_int "p1 never commits" 0 (List.assoc 1 commits);
  check_bool "p2 commits repeatedly" true (List.assoc 2 commits > 2);
  check_bool "local progress violated" false
    (Live_property.holds
       (Live_property.local_progress ~good:Tm_type.good ~n:2)
       r);
  check_bool "(1,2)-freedom holds" true
    (Freedom.holds ~good:Tm_type.good r (Freedom.make ~l:1 ~k:2));
  check_bool "(2,2)-freedom violated" false
    (Freedom.holds ~good:Tm_type.good r (Freedom.make ~l:2 ~k:2));
  check_bool "opacity holds" true (Opacity.check_final r.Run_report.history);
  check_bool "fair" true (Fairness.is_bounded_fair r)

let test_adversary_sets_disjoint_tm () =
  (* F1 histories begin with start_1, F2 histories with start_2. *)
  let r1 =
    Tm_adversary.run_local_progress ~factory:(I12.factory ~vars:1)
      ~max_steps:100 ()
  in
  let r2 =
    Tm_adversary.run_local_progress ~swap:true ~factory:(I12.factory ~vars:1)
      ~max_steps:100 ()
  in
  let first_event r = History.nth r.Run_report.history 0 in
  check_bool "F1 starts with start_1" true
    (first_event r1 = inv 1 Tm_type.Start);
  check_bool "F2 starts with start_2" true
    (first_event r2 = inv 2 Tm_type.Start);
  (* The swapped adversary starves p2 instead. *)
  let commits2 = Tm_adversary.commits r2.Run_report.history in
  check_int "swapped: p2 never commits" 0 (List.assoc 2 commits2)

(* ------------------------------------------------------------------ *)
(* AGP: the (1,n)-free opaque TM.                                      *)

let test_agp_lock_free_under_contention () =
  List.iter
    (fun seed ->
      let r =
        Runner.run ~n:3 ~factory:(Agp_tm.factory ~vars:2)
          ~driver:(Tm_workload.random ~seed ())
          ~max_steps:400 ()
      in
      check_bool "commits happen" true (total_commits r.Run_report.history > 0);
      check_bool "(1,n)-freedom holds" true
        (Freedom.holds ~good:Tm_type.good r (Freedom.lock_freedom ~n:3));
      check_bool "final-state opacity" true
        (Opacity.check_final r.Run_report.history))
    [ 4; 5; 6 ]

let test_agp_local_progress_adversary () =
  let r =
    Tm_adversary.run_local_progress ~factory:(Agp_tm.factory ~vars:1)
      ~max_steps:600 ()
  in
  check_int "p1 starved" 0 (List.assoc 1 (Tm_adversary.commits r.Run_report.history));
  check_bool "local progress violated" false
    (Live_property.holds
       (Live_property.local_progress ~good:Tm_type.good ~n:2)
       r)

let test_agp_does_not_ensure_s_prime () =
  (* AGP lacks the timestamp rule, so the three-way adversary makes it
     commit a forbidden group: AGP ensures opacity but NOT S'. *)
  let r = Tm_adversary.run_three_way ~factory:(Agp_tm.factory ~vars:2) ~max_steps:300 in
  check_bool "some commit happened" true (total_commits r.Run_report.history > 0);
  check_bool "timestamp rule violated" false
    (S_prime.timestamp_rule r.Run_report.history);
  check_bool "opacity still holds" true
    (Opacity.check_final r.Run_report.history)

(* ------------------------------------------------------------------ *)
(* The always-abort TM.                                                *)

let test_always_abort () =
  let r =
    Runner.run ~n:2 ~factory:(Always_abort_tm.factory ())
      ~driver:(Tm_workload.round_robin ())
      ~max_steps:60 ()
  in
  check_int "zero commits" 0 (total_commits r.Run_report.history);
  check_bool "opaque" true (Opacity.check r.Run_report.history);
  check_bool "S' holds" true (S_prime.check r.Run_report.history);
  (* Every response arrives (wait-free in responses) yet no (l,k)
     property with commits-as-good is satisfied on fair solo runs. *)
  let solo =
    Runner.run ~n:2 ~factory:(Always_abort_tm.factory ())
      ~driver:(Driver.with_crashes [ (0, 2) ] (Tm_workload.round_robin ~procs:[ 1 ] ()))
      ~max_steps:60 ()
  in
  check_bool "(1,1)-freedom violated by always-abort" false
    (Freedom.holds ~good:Tm_type.good solo Freedom.obstruction_freedom);
  check_bool "with good = all responses it would hold" true
    (Freedom.holds ~good:(fun _ -> true) solo Freedom.obstruction_freedom)

(* ------------------------------------------------------------------ *)
(* Serializability inclusion chain.                                    *)

let test_serializability_units () =
  let h = h_of (serial_write 1 5 @ serial_write 2 7) in
  check_bool "strict" true (Serializability.strict h);
  check_bool "plain" true (Serializability.plain h);
  (* Strict but not plain is impossible; plain but not strict: a stale
     committed read reordered across real time. *)
  let stale =
    h_of
      (serial_write 1 5
      @ [ start 2; ok 2; read 2 0; value 2 0; tryc 2; committed 2 ])
  in
  check_bool "stale committed read not strictly serializable" false
    (Serializability.strict stale);
  check_bool "but plainly serializable" true (Serializability.plain stale)

let prop_inclusion_chain =
  (* On histories produced by real TM runs: opacity => strict =>
     plain. *)
  QCheck2.Test.make ~name:"opacity => strict => plain serializability"
    ~count:20
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let r = run_i12 ~n:2 ~seed ~max_steps:120 () in
      let h = r.Run_report.history in
      let op = Opacity.check_final h in
      let strict = Serializability.strict h in
      let plain = Serializability.plain h in
      ((not op) || strict) && ((not strict) || plain))

let prop_i12_always_safe =
  QCheck2.Test.make ~name:"I(1,2) ensures S' on random schedules" ~count:15
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let r =
        Runner.run ~n:3 ~factory:(I12.factory ~vars:2)
          ~driver:(Tm_workload.random ~seed ())
          ~max_steps:150 ()
      in
      S_prime.check_final r.Run_report.history)

let prop_agp_always_opaque =
  QCheck2.Test.make ~name:"AGP ensures opacity on random schedules" ~count:15
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let r =
        Runner.run ~n:3 ~factory:(Agp_tm.factory ~vars:2)
          ~driver:(Tm_workload.random ~seed ())
          ~max_steps:150 ()
      in
      Opacity.check_final r.Run_report.history)

let prop_workload_well_formed =
  QCheck2.Test.make ~name:"TM workload produces well-formed histories"
    ~count:20
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let r = run_i12 ~n:3 ~seed ~max_steps:150 () in
      History.is_well_formed r.Run_report.history)


(* ------------------------------------------------------------------ *)
(* The mutual-abort TM: obstruction-free but not lock-free.            *)

let test_mutual_abort_solo_commits () =
  let r =
    Runner.run ~n:2 ~factory:(Mutual_abort_tm.factory ~vars:1)
      ~driver:(Tm_workload.round_robin ~procs:[ 1 ] ())
      ~max_steps:120 ()
  in
  check_bool "solo transactions commit (obstruction-free)" true
    (total_commits r.Run_report.history > 0);
  check_bool "opaque" true (Opacity.check r.Run_report.history)

let test_mutual_abort_defeated_by_alternation () =
  let r =
    Tm_adversary.run_alternating_starts
      ~factory:(Mutual_abort_tm.factory ~vars:1)
      ~max_steps:600
  in
  check_int "mutual abort: zero commits" 0 (total_commits r.Run_report.history);
  check_bool "fair" true (Fairness.is_bounded_fair r);
  check_bool "opacity holds" true (Opacity.check_final r.Run_report.history);
  check_bool "(1,2)-freedom violated: not lock-free" false
    (Freedom.holds ~good:Tm_type.good r (Freedom.make ~l:1 ~k:2));
  check_bool "(1,1)-freedom vacuous on this run" true
    (Freedom.holds ~good:Tm_type.good r Freedom.obstruction_freedom)

let test_agp_survives_alternation () =
  (* AGP has no latest-starter rule: the same schedule cannot prevent
     its commits. *)
  let r =
    Tm_adversary.run_alternating_starts ~factory:(Agp_tm.factory ~vars:1)
      ~max_steps:300
  in
  check_bool "AGP commits under alternating starts" true
    (total_commits r.Run_report.history > 0)

let test_mutual_abort_random_safe () =
  List.iter
    (fun seed ->
      let r =
        Runner.run ~n:3 ~factory:(Mutual_abort_tm.factory ~vars:2)
          ~driver:(Tm_workload.random ~seed ())
          ~max_steps:150 ()
      in
      check_bool
        (Printf.sprintf "opacity (seed %d)" seed)
        true
        (Opacity.check_final r.Run_report.history))
    [ 11; 12; 13 ]


(* ------------------------------------------------------------------ *)
(* The TL2-style lock-based TM: opaque but blocking.                   *)

let test_tl2_solo_commits () =
  let r =
    Runner.run ~n:2 ~factory:(Tl2_tm.factory ())
      ~driver:(Tm_workload.round_robin ~procs:[ 1 ] ())
      ~max_steps:120 ()
  in
  check_bool "solo transactions commit" true
    (total_commits r.Run_report.history > 0);
  check_bool "opaque" true (Opacity.check r.Run_report.history)

let test_tl2_opaque_under_contention () =
  List.iter
    (fun seed ->
      let r =
        Runner.run ~n:3 ~factory:(Tl2_tm.factory ())
          ~driver:(Tm_workload.random ~seed ())
          ~max_steps:200 ()
      in
      check_bool
        (Printf.sprintf "opacity (seed %d)" seed)
        true
        (Opacity.check_final r.Run_report.history);
      check_bool "commits happen" true (total_commits r.Run_report.history > 0))
    [ 1; 2; 3; 4 ]

(* Crash p1 exactly while it holds the commit lock (after its lock CAS,
   before its publish step), then run p2 solo. *)
let crash_holding_lock ~factory ~max_steps =
  let driver view =
    let open Driver in
    if Proc.Set.mem 1 (History.crashed view.history) then
      (* p2 runs alone, forever retrying transactions. *)
      match view.status 2 with
      | Slx_sim.Runtime.Ready -> Schedule 2
      | Slx_sim.Runtime.Idle -> Invoke (2, Tm_workload.next_invocation view 2)
      | Slx_sim.Runtime.Crashed -> Stop
    else
      (* Drive p1 through start; read; write; tryC, but crash it after
         granting the tryC's second atomic step (the lock CAS). *)
      let p1_tryc_invoked =
        History.count
          (fun e -> Event.invocation e = Some Tm_type.Try_commit)
          (History.project view.history 1)
        > 0
      in
      match view.status 1 with
      | Slx_sim.Runtime.Idle -> Invoke (1, Tm_workload.next_invocation view 1)
      | Slx_sim.Runtime.Ready ->
          (* Count p1's steps since tryC: grant the read (validation)
             and the lock CAS, then crash. *)
          if p1_tryc_invoked && view.steps 1 >= 4 then Crash 1 else Schedule 1
      | Slx_sim.Runtime.Crashed -> Stop
  in
  Runner.run ~n:2 ~factory ~driver ~max_steps ()

let test_tl2_blocking_under_crash () =
  (* TL2: the crashed lock holder wedges p2 forever - (1,1)-freedom
     fails in the presence of the crash: the lock-based TM is
     blocking, exactly the paper's non-blocking footnote. *)
  let r = crash_holding_lock ~factory:(Tl2_tm.factory ()) ~max_steps:400 in
  check_bool "p1 crashed" true (Proc.Set.mem 1 r.Run_report.crashed);
  check_int "p2 never commits behind the dead lock holder" 0
    (List.assoc 2 (Tm_adversary.commits r.Run_report.history));
  check_bool "fair (p2 keeps stepping)" true (Fairness.is_bounded_fair r);
  check_bool "(1,1)-freedom violated: blocking" false
    (Freedom.holds ~good:Tm_type.good r Freedom.obstruction_freedom);
  check_bool "opacity still holds" true
    (Opacity.check_final r.Run_report.history)

let test_agp_non_blocking_under_crash () =
  (* The same crash schedule against AGP: p2 sails past the corpse. *)
  let r = crash_holding_lock ~factory:(Agp_tm.factory ~vars:1) ~max_steps:400 in
  check_bool "p2 commits despite p1's crash" true
    (List.assoc 2 (Tm_adversary.commits r.Run_report.history) > 0);
  check_bool "(1,1)-freedom holds: non-blocking" true
    (Freedom.holds ~good:Tm_type.good r Freedom.obstruction_freedom)


(* ------------------------------------------------------------------ *)
(* The protocol-aware workload driver.                                 *)

let test_tm_workload_transitions () =
  (* Build driver views by hand and check next_invocation walks the
     canonical transaction program. *)
  let view_of events : (Tm_type.invocation, Tm_type.response) Driver.view =
    {
      Driver.time = 0;
      n = 1;
      history = h_of events;
      status = (fun _ -> Slx_sim.Runtime.Idle);
      steps = (fun _ -> 0);
    }
  in
  let next events = Tm_workload.next_invocation (view_of events) 1 in
  check_bool "fresh process starts" true (next [] = Tm_type.Start);
  check_bool "after start: read" true
    (next [ start 1; ok 1 ] = Tm_type.Read 0);
  check_bool "after read: write read+1" true
    (next [ start 1; ok 1; read 1 0; value 1 7 ] = Tm_type.Write (0, 8));
  check_bool "after write: tryC" true
    (next [ start 1; ok 1; read 1 0; value 1 7; write 1 0 8; ok 1 ]
    = Tm_type.Try_commit);
  check_bool "after commit: start afresh" true
    (next
       [ start 1; ok 1; read 1 0; value 1 7; write 1 0 8; ok 1; tryc 1;
         committed 1 ]
    = Tm_type.Start);
  check_bool "after abort anywhere: start afresh" true
    (next [ start 1; ok 1; read 1 0; aborted 1 ] = Tm_type.Start)

let suites =
  [
    ( "tm-transactions",
      [
        quick "extraction" test_transaction_extraction;
        quick "abort mid-transaction" test_abort_mid_transaction;
      ] );
    ( "tm-opacity",
      [
        quick "serial history" test_opacity_serial;
        quick "read committed" test_opacity_read_committed;
        quick "dirty read" test_opacity_dirty_read;
        quick "aborted reads must be consistent" test_opacity_aborted_must_be_consistent;
        quick "commit-pending completion" test_opacity_commit_pending_completion;
        quick "live writes invisible" test_opacity_live_writes_invisible;
        quick "real time respected" test_opacity_real_time_respected;
        quick "lost update rejected" test_opacity_write_skew_style;
        quick "serializability units" test_serializability_units;
      ] );
    ( "tm-s-prime",
      [
        quick "rule violation detected" test_s_prime_rule_violation;
        quick "sequential groups exempt" test_s_prime_rule_not_triggered_when_sequential;
        quick "early tryC exempt" test_s_prime_rule_needs_late_tryc;
      ] );
    ( "tm-implementations",
      [
        quick "I(1,2) solo commits" test_i12_solo_commits;
        quick "I(1,2) two procs opaque and live" test_i12_two_procs_opaque_and_live;
        quick "I(1,2) two of three commit" test_i12_two_of_three_commit;
        quick "I(1,2) three-way adversary starves" test_i12_three_way_adversary_starves;
        quick "I(1,2) local-progress adversary" test_i12_local_progress_adversary;
        quick "TM adversary sets disjoint" test_adversary_sets_disjoint_tm;
        quick "AGP lock-free under contention" test_agp_lock_free_under_contention;
        quick "AGP local-progress adversary" test_agp_local_progress_adversary;
        quick "AGP does not ensure S'" test_agp_does_not_ensure_s_prime;
        quick "always-abort TM" test_always_abort;
        quick "mutual-abort TM solo commits" test_mutual_abort_solo_commits;
        quick "mutual-abort TM defeated by alternation"
          test_mutual_abort_defeated_by_alternation;
        quick "AGP survives alternation" test_agp_survives_alternation;
        quick "mutual-abort TM random safe" test_mutual_abort_random_safe;
        quick "TL2 solo commits" test_tl2_solo_commits;
        quick "TL2 opaque under contention" test_tl2_opaque_under_contention;
        quick "TL2 blocking under crash" test_tl2_blocking_under_crash;
        quick "AGP non-blocking under crash" test_agp_non_blocking_under_crash;
        quick "TM workload transitions" test_tm_workload_transitions;
      ]
      @ qcheck
          [
            prop_inclusion_chain;
            prop_i12_always_safe;
            prop_agp_always_opaque;
            prop_workload_well_formed;
          ] );
  ]
