open Slx_automata
open Support

(* A tiny two-state toggle automaton: input "in" flips the state, and
   the automaton answers with output "out" from state b. *)
let toggle =
  Automaton.make ~name:"toggle" ~inputs:[ "in" ] ~outputs:[ "out" ]
    ~internals:[] ~init:[ State.leaf "a" ]
    ~delta:(fun s ->
      if State.equal s (State.leaf "a") then [ ("in", State.leaf "b") ]
      else if State.equal s (State.leaf "b") then [ ("out", State.leaf "a") ]
      else [])

(* An environment that emits "in" twice. *)
let env2 =
  Automaton.make ~name:"env2" ~inputs:[] ~outputs:[ "in" ] ~internals:[]
    ~init:[ State.leaf "e0" ]
    ~delta:(fun s ->
      if State.equal s (State.leaf "e0") then [ ("in", State.leaf "e1") ]
      else if State.equal s (State.leaf "e1") then [ ("in", State.leaf "e2") ]
      else [])

let test_make_validation () =
  Alcotest.check_raises "overlapping classes rejected"
    (Invalid_argument "Automaton.make: action classes must be disjoint")
    (fun () ->
      ignore
        (Automaton.make ~name:"bad" ~inputs:[ "x" ] ~outputs:[ "x" ]
           ~internals:[] ~init:[ State.leaf "s" ] ~delta:(fun _ -> [])))

let test_signature () =
  check_bool "actions" true
    (Action.Set.equal (Automaton.actions toggle) (Action.Set.of_list [ "in"; "out" ]));
  check_bool "external = in + out" true
    (Action.Set.equal
       (Automaton.external_actions toggle)
       (Action.Set.of_list [ "in"; "out" ]));
  check_bool "enabled at a" true (Automaton.enabled toggle (State.leaf "a") "in");
  check_bool "not enabled at a" false
    (Automaton.enabled toggle (State.leaf "a") "out");
  check_bool "step" true
    (Automaton.step toggle (State.leaf "a") "in" = [ State.leaf "b" ])

let test_compatibility () =
  check_bool "toggle compatible with env2" true
    (Automaton.compatible toggle env2);
  check_bool "toggle incompatible with itself (shared output)" false
    (Automaton.compatible toggle toggle);
  Alcotest.check_raises "compose rejects incompatible"
    (Invalid_argument "Automaton.compose: toggle and toggle are incompatible")
    (fun () -> ignore (Automaton.compose toggle toggle))

let test_composition_hiding () =
  let comp = Automaton.compose toggle env2 in
  (* "in" is matched input/output: hidden per the paper's footnote. *)
  check_bool "matched pair becomes internal" true
    (Action.Set.mem "in" (Automaton.internals comp));
  check_bool "no inputs remain" true
    (Action.Set.is_empty (Automaton.inputs comp));
  check_bool "out remains an output" true
    (Action.Set.mem "out" (Automaton.outputs comp))

let test_composition_synchronizes () =
  let comp = Automaton.compose toggle env2 in
  (* The composition can run: in.out.in.out, with "in" synchronized. *)
  let traces = Automaton.traces comp ~depth:4 in
  check_bool "out.out reachable as external trace" true
    (List.exists (fun tr -> tr = [ "out"; "out" ]) traces);
  (* env2 only supplies two "in"s: no trace has three "out"s. *)
  check_bool "no three outs" true
    (List.for_all
       (fun tr -> List.length (List.filter (String.equal "out") tr) <= 2)
       (Automaton.traces comp ~depth:8))

let test_executions_and_fairness () =
  let execs = Automaton.executions toggle ~depth:2 in
  (* depth 2: [], [in], [in;out]. *)
  check_int "three executions" 3 (List.length execs);
  let final_b =
    List.find
      (fun e -> Automaton.final_state e = State.leaf "b")
      execs
  in
  check_bool "b has an enabled output: not fair" false
    (Automaton.is_fair_finite toggle final_b);
  let final_a =
    List.find
      (fun e ->
        List.length e.Automaton.actions = 2
        && Automaton.final_state e = State.leaf "a")
      execs
  in
  (* State a has "in" (an input) enabled, so stopping there is unfair
     too under the paper's definition. *)
  check_bool "a has an enabled input: not fair" false
    (Automaton.is_fair_finite toggle final_a)

let test_reachable () =
  let r = Automaton.reachable toggle ~depth:3 in
  check_int "two reachable states" 2 (State.Set.cardinal r);
  let r0 = Automaton.reachable toggle ~depth:0 in
  check_int "depth 0: initial only" 1 (State.Set.cardinal r0)

let test_compose_all () =
  let a = Automaton.compose_all [ toggle; env2 ] in
  check_bool "same as binary compose" true
    (Action.Set.equal (Automaton.actions a)
       (Automaton.actions (Automaton.compose toggle env2)));
  Alcotest.check_raises "empty list rejected"
    (Invalid_argument "Automaton.compose_all: empty list") (fun () ->
      ignore (Automaton.compose_all []))

let test_state_module () =
  let s = State.pair (State.leaf "x") (State.leaf "y") in
  check_bool "equal" true (State.equal s (State.pair (State.leaf "x") (State.leaf "y")));
  check_bool "not equal" false (State.equal s (State.leaf "x"));
  check_bool "compare total" true (State.compare s (State.leaf "x") <> 0);
  check_bool "pp" true
    (Format.asprintf "%a" State.pp s = "(x, y)")

let test_action_helpers () =
  check_bool "invocation naming" true
    (Action.invocation ~proc:2 "propose(1)" = "propose(1)_2");
  check_bool "crash naming" true (Action.crash 3 = "crash_3");
  check_bool "is_crash" true (Action.is_crash "crash_3");
  check_bool "is_crash false" false (Action.is_crash "ping_1");
  check_bool "proc_of" true (Action.proc_of "ping_12" = Some 12);
  check_bool "proc_of none" true (Action.proc_of "ping" = None)

(* Property: composition is commutative up to signatures and traces. *)
let prop_compose_commutes =
  QCheck2.Test.make ~name:"composition commutes on signatures and traces"
    ~count:1 QCheck2.Gen.unit (fun () ->
      let c1 = Automaton.compose toggle env2 in
      let c2 = Automaton.compose env2 toggle in
      Action.Set.equal (Automaton.internals c1) (Automaton.internals c2)
      && Action.Set.equal (Automaton.outputs c1) (Automaton.outputs c2)
      &&
      let t1 = List.sort compare (Automaton.traces c1 ~depth:4) in
      let t2 = List.sort compare (Automaton.traces c2 ~depth:4) in
      t1 = t2)

let suites =
  [
    ( "automata",
      [
        quick "make validation" test_make_validation;
        quick "signature" test_signature;
        quick "compatibility" test_compatibility;
        quick "composition hiding" test_composition_hiding;
        quick "composition synchronizes" test_composition_synchronizes;
        quick "executions and fairness" test_executions_and_fairness;
        quick "reachable" test_reachable;
        quick "compose_all" test_compose_all;
        quick "state module" test_state_module;
        quick "action helpers" test_action_helpers;
      ]
      @ qcheck [ prop_compose_commutes ] );
  ]
