(* The conflict-soundness sanitizer: audit sweeps, fixtures, the
   happens-before certifier, the commutation oracle, footprint algebra
   properties, and the sanitize-changes-nothing differential. *)

open Slx_sim
open Slx_core
open Support
module Audit = Slx_analysis.Audit
module Registry = Slx_analysis.Audit_registry
module Fixtures = Slx_analysis.Fixtures
module Hb = Slx_analysis.Hb

(* ------------------------------------------------------------------ *)
(* The registry sweep: every registered implementation is clean.       *)

let test_registry_clean () =
  List.iter
    (fun case ->
      let r = Audit.run_case ~bound:`Runtest ~max_hb_runs:16 case in
      check_bool
        (Printf.sprintf "%s audits clean: %s" r.Audit.cr_name
           (Format.asprintf "%a" Audit.pp_case_result r))
        true (Audit.case_clean r);
      check_bool
        (r.Audit.cr_name ^ " swept at least one run")
        true (r.Audit.cr_runs > 0);
      check_bool
        (r.Audit.cr_name ^ " certified at least one run")
        true
        (r.Audit.cr_hb_runs > 0))
    (Registry.all ())

(* ------------------------------------------------------------------ *)
(* Fixtures: each mis-declaration is caught by the intended layer.     *)

let run_fixture ?detect ?oracle name =
  match Registry.select ~name (Registry.fixture_cases ()) with
  | [ case ] -> Audit.run_case ~bound:`Runtest ?detect ?oracle case
  | _ -> Alcotest.failf "fixture %s not registered exactly once" name

let test_leaky_caught_with_witness () =
  let r = run_fixture "fixture-leaky" in
  match r.Audit.cr_witness with
  | None -> Alcotest.fail "leaky fixture audited clean"
  | Some w ->
      check_bool "undeclared touch" true
        (w.Audit.w_violation.Runtime.v_kind = Runtime.Undeclared_touch);
      check_bool "the leak is a write" true w.Audit.w_violation.Runtime.v_write;
      check_bool "witness replays on a fresh instance" true w.Audit.w_replayed;
      (* The witness is the lex-least violating script of the tree:
         pinning it guards the DFS order and the pretty-printer. *)
      Alcotest.(check (list string))
        "pinned witness script"
        [ "invoke p1 (poke 1)"; "schedule p1" ]
        w.Audit.w_script

let test_write_under_read_caught () =
  let r = run_fixture "fixture-write-under-read" in
  match r.Audit.cr_witness with
  | None -> Alcotest.fail "write-under-read fixture audited clean"
  | Some w ->
      check_bool "undeclared (write under read declaration)" true
        (w.Audit.w_violation.Runtime.v_kind = Runtime.Undeclared_touch
        && w.Audit.w_violation.Runtime.v_write);
      check_bool "witness replays" true w.Audit.w_replayed

let test_nested_escape_caught () =
  let r = run_fixture "fixture-nested-escape" in
  match r.Audit.cr_witness with
  | None -> Alcotest.fail "nested-escape fixture audited clean"
  | Some w ->
      check_bool "flagged at nesting time" true
        (w.Audit.w_violation.Runtime.v_kind = Runtime.Undeclared_nesting);
      check_bool "witness replays" true w.Audit.w_replayed

let test_phantom_linted_not_failed () =
  let r = run_fixture "fixture-phantom" in
  check_bool "over-declaration is not a violation" true (Audit.case_clean r);
  check_bool "the phantom object is linted never-touched" true
    (List.exists
       (function Audit.Never_touched _ -> true | _ -> false)
       r.Audit.cr_lints)

let test_nested_ok_clean () =
  let r = run_fixture "fixture-nested-ok" in
  check_bool "legal nesting audits clean" true (Audit.case_clean r);
  check_bool "no violation witness" true (r.Audit.cr_witness = None);
  check_bool "runs were swept (nested atomics ran inline)" true
    (r.Audit.cr_runs > 0)

let test_clean_fixture_clean () =
  let r = run_fixture "fixture-clean" in
  check_bool "clean twin audits clean" true (Audit.case_clean r);
  Alcotest.(check (list string)) "and lint-free" []
    (List.map (Format.asprintf "%a" Audit.pp_lint) r.Audit.cr_lints)

let test_hb_catches_leaky_without_detection () =
  (* With the race detector disarmed the sweep completes; the HB
     certifier must independently flag the (Poke, Peek) conflict whose
     declarations commute. *)
  let r = run_fixture ~detect:false "fixture-leaky" in
  check_bool "no race-detector witness when disarmed" true
    (r.Audit.cr_witness = None);
  check_bool "runs were swept to completion" true (r.Audit.cr_runs > 0);
  check_bool "hb certifier reports the mismatch" true
    (r.Audit.cr_hb_mismatch <> None)

let test_oracle_clean_on_clean_fixture () =
  let r = run_fixture ~oracle:true "fixture-clean" in
  check_bool "oracle exercised some commuting pair" true
    (r.Audit.cr_oracle_checks > 0);
  Alcotest.(check (list string)) "and found no divergence" []
    r.Audit.cr_oracle_failures

let test_oracle_flags_leaky () =
  (* Poke's pending footprint (W a) and Peek's (R b) commute by
     declaration, but Poke secretly writes b, so the two orders give
     Peek different responses — the oracle must see the divergence. *)
  let r = run_fixture ~detect:false ~oracle:true "fixture-leaky" in
  check_bool "oracle exercised the leaky pair" true
    (r.Audit.cr_oracle_checks > 0);
  check_bool "and caught the divergence" true
    (r.Audit.cr_oracle_failures <> [])

(* ------------------------------------------------------------------ *)
(* The happens-before certifier on hand-built runs.                    *)

let acc obj write = { Runtime.obj; write }

let step p decl touched =
  { Hb.hs_proc = p; hs_decl = decl; hs_touched = touched }

let w_fp obj = Runtime.Access (acc obj true)
let r_fp obj = Runtime.Access (acc obj false)

let test_hb_certifies_declared_conflict () =
  let steps =
    [ step 1 (w_fp 1) [ acc 1 true ]; step 2 (w_fp 1) [ acc 1 true ] ]
  in
  match Hb.certify ~n:2 steps with
  | Error m -> Alcotest.failf "spurious mismatch: %a" Hb.pp_mismatch m
  | Ok c ->
      check_int "one cross-checked conflict pair" 1 c.Hb.hb_checks;
      check_int "one hb edge" 1 c.Hb.hb_edges

let test_hb_flags_commuting_declarations () =
  (* Both steps touch object 1, but their declarations talk about
     disjoint objects — exactly the lie POR would prune on. *)
  let steps =
    [ step 1 (w_fp 1) [ acc 1 true ]; step 2 (w_fp 2) [ acc 1 true ] ]
  in
  match Hb.certify ~n:2 steps with
  | Ok _ -> Alcotest.fail "commuting declarations over a real conflict passed"
  | Error m ->
      check_int "the conflicting object is reported" 1 m.Hb.mm_obj;
      check_bool "conflict involves a write" true m.Hb.mm_write;
      check_int "earlier step index" 0 m.Hb.mm_earlier;
      check_int "later step index" 1 m.Hb.mm_later

let test_hb_reads_do_not_conflict () =
  let steps =
    [ step 1 (r_fp 1) [ acc 1 false ]; step 2 (r_fp 1) [ acc 1 false ] ]
  in
  match Hb.certify ~n:2 steps with
  | Error m -> Alcotest.failf "read/read flagged: %a" Hb.pp_mismatch m
  | Ok c ->
      check_int "no conflict pairs" 0 c.Hb.hb_checks;
      check_int "no edges" 0 c.Hb.hb_edges

let test_hb_same_proc_never_conflicts () =
  let steps =
    [ step 1 (w_fp 1) [ acc 1 true ]; step 1 (r_fp 2) [ acc 1 true ] ]
  in
  match Hb.certify ~n:2 steps with
  | Error m -> Alcotest.failf "same-process pair flagged: %a" Hb.pp_mismatch m
  | Ok c -> check_int "program order needs no cross-check" 0 c.Hb.hb_checks

let test_hb_edges_are_non_redundant () =
  (* p2 reads the same write twice: the second read is already ordered
     after p1's write, so only one edge is counted. *)
  let steps =
    [
      step 1 (w_fp 1) [ acc 1 true ];
      step 2 (r_fp 1) [ acc 1 false ];
      step 2 (r_fp 1) [ acc 1 false ];
    ]
  in
  match Hb.certify ~n:2 steps with
  | Error m -> Alcotest.failf "spurious mismatch: %a" Hb.pp_mismatch m
  | Ok c ->
      check_int "two conflicting pairs cross-checked" 2 c.Hb.hb_checks;
      check_int "but only one non-redundant edge" 1 c.Hb.hb_edges

(* ------------------------------------------------------------------ *)
(* Footprint algebra properties.                                       *)

let gen_access =
  QCheck2.Gen.(
    let* obj = int_range 0 4 in
    let* write = bool in
    return { Runtime.obj; write })

let gen_footprint =
  QCheck2.Gen.(
    let* roll = int_range 0 10 in
    if roll = 0 then return Runtime.Opaque
    else
      let* accs = list_size (int_range 1 4) gen_access in
      return (Runtime.of_accesses accs))

let prop_commute_symmetric =
  QCheck2.Test.make ~name:"footprints_commute is symmetric" ~count:500
    QCheck2.Gen.(pair gen_footprint gen_footprint)
    (fun (a, b) ->
      Runtime.footprints_commute a b = Runtime.footprints_commute b a)

let prop_commute_union_monotone =
  QCheck2.Test.make
    ~name:"commuting with a union = commuting with both parts" ~count:500
    QCheck2.Gen.(triple gen_footprint gen_footprint gen_footprint)
    (fun (a, b, c) ->
      Runtime.footprints_commute (Runtime.union a b) c
      = (Runtime.footprints_commute a c && Runtime.footprints_commute b c))

let prop_covers_union =
  QCheck2.Test.make ~name:"a union covers both sides" ~count:500
    QCheck2.Gen.(pair gen_footprint gen_footprint)
    (fun (a, b) ->
      let u = Runtime.union a b in
      Runtime.covers u a && Runtime.covers u b)

let prop_of_accesses_union_homomorphism =
  QCheck2.Test.make
    ~name:"of_accesses (l1 @ l2) = union (of_accesses l1) (of_accesses l2)"
    ~count:500
    QCheck2.Gen.(
      pair (list_size (int_range 0 5) gen_access)
        (list_size (int_range 0 5) gen_access))
    (fun (l1, l2) ->
      Runtime.of_accesses (l1 @ l2)
      = Runtime.union (Runtime.of_accesses l1) (Runtime.of_accesses l2))

(* Nesting composition, observed through a recording shadow: a nested
   declaration covered by the pending one runs inline (no effect
   handler in scope), its touches check against the composed effective
   footprint, and the step log exposes declared vs effective. *)
let test_nesting_composes_effective_footprint () =
  let sh = Runtime.make_shadow ~record:true () in
  let cur =
    Runner.Cursor.create ~n:1
      ~factory:(fun ~n:_ ->
        let c = Fixtures.cell 0 in
        fun ~proc:_ () ->
          Runtime.atomic_access ~obj:(snd c) ~write:true (fun () ->
              Fixtures.store c 1;
              Runtime.atomic_access ~obj:(snd c) ~write:false (fun () ->
                  ignore (Fixtures.load c))))
      ~shadow:sh ()
  in
  Runner.Cursor.apply cur (Driver.Invoke (1, ()));
  Runner.Cursor.apply cur (Driver.Schedule 1);
  check_int "no violations" 0 (Runtime.shadow_violation_count sh);
  match Runtime.shadow_steps sh with
  | [ log ] ->
      let obj =
        match Runtime.accesses log.Runtime.declared with
        | Some [ a ] -> a.Runtime.obj
        | _ -> Alcotest.fail "expected a single declared access"
      in
      check_bool "pending declaration is the outer write" true
        (log.Runtime.declared = Runtime.Access { Runtime.obj; write = true });
      check_bool "effective = declared ∪ nested (W absorbs R)" true
        (log.Runtime.effective = log.Runtime.declared);
      Alcotest.(check (list (pair int bool)))
        "touches in program order"
        [ (obj, true); (obj, false) ]
        (List.map
           (fun a -> (a.Runtime.obj, a.Runtime.write))
           log.Runtime.touched)
  | logs -> Alcotest.failf "expected one step log, got %d" (List.length logs)

(* ------------------------------------------------------------------ *)
(* Sanitize changes nothing: the engine differential.                  *)

let one_proposal =
  Explore.workload_invoke
    (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))

let explore_register ?cache ?(por = false) ?(symmetry = false) ?domains
    ?(sanitize = false) () =
  Explore.explore ~n:2
    ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
    ~invoke:one_proposal ~depth:8 ?cache ~por ~symmetry ?domains ~sanitize
    ~check:(fun r ->
      Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history)
    ()

let essence ~steps e =
  let s = e.Explore.stats in
  ( (match e.Explore.outcome with
    | Explore.Ok runs -> ("ok", runs)
    | Explore.Counterexample _ -> ("cex", 0)),
    s.Explore_stats.runs,
    (if steps then s.Explore_stats.steps_executed else 0),
    s.Explore_stats.history_digest )

let test_sanitize_changes_nothing () =
  let configs =
    [
      ("plain", true, fun sanitize -> explore_register ~sanitize ());
      ( "no-cache",
        true,
        fun sanitize -> explore_register ~cache:false ~sanitize () );
      ( "por+symmetry",
        true,
        fun sanitize -> explore_register ~por:true ~symmetry:true ~sanitize ()
      );
      ( "domains-3",
        false,
        fun sanitize -> explore_register ~domains:3 ~sanitize () );
    ]
  in
  List.iter
    (fun (name, steps, run) ->
      let off = run false and on = run true in
      Alcotest.(check (pair (pair (pair string int) int) (pair int int)))
        (name ^ ": sanitizing changes nothing the engine computes")
        (let a, b, c, d = essence ~steps off in
         (((fst a, snd a), b), (c, d)))
        (let a, b, c, d = essence ~steps on in
         (((fst a, snd a), b), (c, d)));
      check_int
        (name ^ ": instrumented implementations declare truthfully")
        0 on.Explore.stats.Explore_stats.footprint_violations)
    configs

let test_sanitize_counts_in_live_search () =
  let open Slx_liveness in
  let factory () = Slx_consensus.Register_consensus.factory ~max_rounds:8 () in
  let invoke =
    Explore.workload_invoke
      (Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  let good (_ : Slx_consensus.Consensus_type.response) = true in
  let point = Freedom.make ~l:1 ~k:2 in
  let search sanitize =
    Live_explore.search ~n:2 ~factory ~invoke ~good ~point ~depth:6 ~sanitize
      ()
  in
  let off = search false and on = search true in
  check_bool "sanitize changes no liveness verdict" true
    ((match off.Live_explore.outcome with
     | Live_explore.Lasso c -> Some (c.Lasso.c_stem, c.Lasso.c_cycle)
     | Live_explore.No_fair_cycle -> None)
    = (match on.Live_explore.outcome with
      | Live_explore.Lasso c -> Some (c.Lasso.c_stem, c.Lasso.c_cycle)
      | Live_explore.No_fair_cycle -> None));
  check_int "and finds no violations in instrumented implementations" 0
    on.Live_explore.stats.Explore_stats.footprint_violations

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "analysis: audit",
      [
        quick "every registered implementation audits clean"
          test_registry_clean;
        quick "leaky fixture caught with pinned replayable witness"
          test_leaky_caught_with_witness;
        quick "write-under-read caught" test_write_under_read_caught;
        quick "nested escape caught" test_nested_escape_caught;
        quick "phantom over-declaration linted, not failed"
          test_phantom_linted_not_failed;
        quick "legal nesting audits clean" test_nested_ok_clean;
        quick "clean twin audits clean and lint-free"
          test_clean_fixture_clean;
        quick "hb certifier catches the leak with detection off"
          test_hb_catches_leaky_without_detection;
        quick "commutation oracle passes the clean fixture"
          test_oracle_clean_on_clean_fixture;
        quick "commutation oracle catches the leak" test_oracle_flags_leaky;
      ] );
    ( "analysis: happens-before",
      [
        quick "declared conflict certifies" test_hb_certifies_declared_conflict;
        quick "commuting declarations over a real conflict flagged"
          test_hb_flags_commuting_declarations;
        quick "read/read never conflicts" test_hb_reads_do_not_conflict;
        quick "program order needs no cross-check"
          test_hb_same_proc_never_conflicts;
        quick "vector clocks drop redundant edges"
          test_hb_edges_are_non_redundant;
      ] );
    ( "analysis: footprint algebra",
      [ quick "nesting composes the effective footprint"
          test_nesting_composes_effective_footprint ]
      @ qcheck
          [
            prop_commute_symmetric;
            prop_commute_union_monotone;
            prop_covers_union;
            prop_of_accesses_union_homomorphism;
          ] );
    ( "analysis: sanitize differential",
      [
        quick "sanitize changes nothing in the safety engines"
          test_sanitize_changes_nothing;
        quick "sanitize changes nothing in the fair-cycle search"
          test_sanitize_counts_in_live_search;
      ] );
  ]
