(* The fair-cycle search (Live_explore): Theorem 5.2's split found by
   exhaustive search, certificate pumping, and the cross-validation
   against the adversary-game classification. *)

open Slx_sim
open Slx_liveness
open Slx_core
open Support

let good (_ : Slx_consensus.Consensus_type.response) = true

let invoke =
  Explore.workload_invoke
    (Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1)))

let reg_factory ?(depth = 10) () =
  Slx_consensus.Register_consensus.factory ~max_rounds:(max 8 depth) ()

let search_register ?(depth = 10) ?(max_crashes = 0) point =
  Live_explore.search ~n:2
    ~factory:(fun () -> reg_factory ~depth ())
    ~invoke ~good ~point ~depth ~max_crashes ()

let search_cas ?(depth = 9) ?(max_crashes = 1) point =
  Live_explore.search ~n:2
    ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
    ~invoke ~good ~point ~depth ~max_crashes ()

let lasso_exn name r =
  match r.Live_explore.outcome with
  | Live_explore.Lasso c -> c
  | Live_explore.No_fair_cycle -> Alcotest.failf "%s: expected a lasso" name

(* ------------------------------------------------------------------ *)
(* The acceptance split (Theorem 5.2 at n = 2).                        *)

let test_register_lasso_for_1_2 () =
  let r = search_register ~depth:8 (Freedom.make ~l:1 ~k:2) in
  let c = lasso_exn "register (1,2)" r in
  check_bool "cycle is non-empty" true (c.Lasso.c_cycle <> []);
  check_bool "some candidate cycles were examined" true
    (r.Live_explore.stats.Explore_stats.cycles_examined > 0);
  check_bool "a fair violating candidate was found" true
    (r.Live_explore.stats.Explore_stats.fair_cycles >= 1);
  (* The emitted certificate replays and pumps through a fresh
     instance. *)
  match Lasso.pump ~factory:(reg_factory ()) ~repetitions:4 c with
  | Error e -> Alcotest.failf "pump failed: %s" e
  | Ok rep ->
      check_bool "pumped report carries the bounded violation" true
        (Lasso.certified_violation ~good rep (Freedom.make ~l:1 ~k:2))

let test_register_no_lasso_for_1_1 () =
  (* Under solo windows (one crash allowed) the register consensus is
     obstruction-free: the search must exhaust the tree and find
     nothing — the positive half of the Theorem 5.2 split. *)
  let r = search_register ~depth:9 ~max_crashes:1 Freedom.obstruction_freedom in
  (match r.Live_explore.outcome with
  | Live_explore.No_fair_cycle -> ()
  | Live_explore.Lasso _ ->
      Alcotest.fail "register consensus is obstruction-free");
  check_bool "candidates were examined and rejected" true
    (r.Live_explore.stats.Explore_stats.cycles_examined > 0)

let test_register_lasso_for_2_2 () =
  let r = search_register ~depth:9 ~max_crashes:1 (Freedom.make ~l:2 ~k:2) in
  ignore (lasso_exn "register (2,2)" r)

let test_cas_no_lasso_anywhere () =
  (* CAS consensus is wait-free: no point of the grid is excluded. *)
  List.iter
    (fun point ->
      match (search_cas point).Live_explore.outcome with
      | Live_explore.No_fair_cycle -> ()
      | Live_explore.Lasso _ ->
          Alcotest.failf "CAS consensus: unexpected lasso for %s"
            (Format.asprintf "%a" Freedom.pp point))
    (Freedom.all ~n:2)

(* ------------------------------------------------------------------ *)
(* Determinism and engine configurations.                              *)

let test_witness_deterministic_across_configs () =
  let point = Freedom.make ~l:1 ~k:2 in
  let base = lasso_exn "base" (search_register ~depth:8 point) in
  let again = lasso_exn "again" (search_register ~depth:8 point) in
  let no_cache =
    lasso_exn "no cache"
      (Live_explore.search ~n:2
         ~factory:(fun () -> reg_factory ())
         ~invoke ~good ~point ~depth:8 ~cache:false ())
  in
  check_bool "same stem on a re-run" true (base.Lasso.c_stem = again.Lasso.c_stem);
  check_bool "same cycle on a re-run" true
    (base.Lasso.c_cycle = again.Lasso.c_cycle);
  check_bool "cache does not change the witness" true
    (base.Lasso.c_stem = no_cache.Lasso.c_stem
    && base.Lasso.c_cycle = no_cache.Lasso.c_cycle)

let test_invoke_order_reduction_sound () =
  let point = Freedom.make ~l:1 ~k:2 in
  let full = search_register ~depth:8 point in
  let reduced =
    Live_explore.search ~n:2
      ~factory:(fun () -> reg_factory ())
      ~invoke ~good ~point ~depth:8 ~invoke_order:true ()
  in
  let c = lasso_exn "reduced" reduced in
  check_bool "reduction preserves the verdict" true
    (match full.Live_explore.outcome with
    | Live_explore.Lasso _ -> true
    | Live_explore.No_fair_cycle -> false);
  check_bool "reduced witness still pumps" true
    (match Lasso.pump ~factory:(reg_factory ()) c with
    | Ok _ -> true
    | Error _ -> false);
  check_bool "fewer or equal nodes with the reduction" true
    (reduced.Live_explore.stats.Explore_stats.nodes
    <= full.Live_explore.stats.Explore_stats.nodes)

(* ------------------------------------------------------------------ *)
(* Certificate mechanics.                                              *)

let test_cert_digest_repeats_exactly () =
  (* The satellite check, stated directly: replay the certificate's
     cycle twice more through a fresh cursor and the boundary
     configuration digest (the fingerprint of the quotient that can
     recur) repeats exactly. *)
  let c = lasso_exn "cert" (search_register ~depth:8 (Freedom.make ~l:1 ~k:2)) in
  let cur =
    Runner.Cursor.replay ~n:2 ~factory:(reg_factory ())
      (c.Lasso.c_stem @ c.Lasso.c_cycle)
  in
  let boundary cur =
    (Lasso.cert_of_cursor ~stem:c.Lasso.c_stem ~cycle:c.Lasso.c_cycle
       ~cells:c.Lasso.c_cells cur)
      .Lasso.c_digest
  in
  check_int "digest at the first boundary" c.Lasso.c_digest (boundary cur);
  List.iter (Runner.Cursor.apply cur) c.Lasso.c_cycle;
  check_int "digest after one more repetition" c.Lasso.c_digest (boundary cur);
  List.iter (Runner.Cursor.apply cur) c.Lasso.c_cycle;
  check_int "digest after two more repetitions" c.Lasso.c_digest (boundary cur)

let test_pump_rejects_wrong_instance () =
  (* A certificate recorded against the register consensus does not
     validate against a different implementation. *)
  let c = lasso_exn "cert" (search_register ~depth:8 (Freedom.make ~l:1 ~k:2)) in
  match
    Lasso.pump ~factory:(Slx_consensus.Cas_consensus.factory ()) c
  with
  | Ok _ -> Alcotest.fail "pump should reject a CAS replay"
  | Error _ -> ()

let test_pump_argument_errors () =
  let c = lasso_exn "cert" (search_register ~depth:8 (Freedom.make ~l:1 ~k:2)) in
  (match Lasso.pump ~factory:(reg_factory ()) ~repetitions:1 c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "repetitions < 2 must be rejected");
  Alcotest.check_raises "empty cycle rejected"
    (Invalid_argument "Lasso.cert_of_cursor: empty cycle") (fun () ->
      let cur = Runner.Cursor.create ~n:2 ~factory:(reg_factory ()) () in
      ignore (Lasso.cert_of_cursor ~stem:[] ~cycle:[] ~cells:[] cur));
  Alcotest.check_raises "cells arity checked"
    (Invalid_argument "Lasso.cert_of_cursor: one cell list per cycle tick")
    (fun () ->
      let cur = Runner.Cursor.create ~n:2 ~factory:(reg_factory ()) () in
      ignore
        (Lasso.cert_of_cursor ~stem:[]
           ~cycle:[ Driver.Schedule 1 ]
           ~cells:[] cur))

let prop_lasso_pumps =
  (* The QCheck satellite: over small depth/point/pump-length choices,
     the emitted certificate pumps — every repetition reproduces the
     abstract cells and the boundary digest — and the pumped window
     still carries the bounded violation. *)
  QCheck2.Test.make ~name:"emitted lasso certificates pump" ~count:12
    QCheck2.Gen.(
      triple (int_range 8 9) (oneofl [ (1, 2); (2, 2) ]) (int_range 2 6))
    (fun (depth, (l, k), repetitions) ->
      let point = Freedom.make ~l ~k in
      match (search_register ~depth point).Live_explore.outcome with
      | Live_explore.No_fair_cycle -> false
      | Live_explore.Lasso c -> (
          match
            Lasso.pump ~factory:(reg_factory ~depth ()) ~repetitions c
          with
          | Error _ -> false
          | Ok rep -> Lasso.certified_violation ~good rep point))

(* ------------------------------------------------------------------ *)
(* Cross-validation: exhaustive search vs adversary games.             *)

let test_exhaustive_grid_matches_games () =
  let exhaustive = Figure1.consensus_exhaustive ~n:2 ~depth:10 () in
  let games = Figure1.consensus ~n:2 ~max_steps:1200 () in
  List.iter
    (fun (point, color) ->
      let l = Freedom.l point and k = Freedom.k point in
      match Figure1.color_at games ~l ~k with
      | None -> Alcotest.failf "game grid misses (%d,%d)" l k
      | Some game_color ->
          check_bool
            (Printf.sprintf "grids agree at (%d,%d)" l k)
            true
            (color = game_color))
    exhaustive.Figure1.cells;
  (* And the shape is Theorem 5.2's: white exactly at (1,1). *)
  check_bool "white at (1,1)" true
    (Figure1.color_at exhaustive ~l:1 ~k:1 = Some Figure1.Not_excluded);
  check_bool "black at (1,2)" true
    (Figure1.color_at exhaustive ~l:1 ~k:2 = Some Figure1.Excluded);
  check_bool "black at (2,2)" true
    (Figure1.color_at exhaustive ~l:2 ~k:2 = Some Figure1.Excluded)

let test_certify_run_i12_local_progress () =
  (* The I12 leg of E20: the Section 4.1 adversary's sampled win is
     promoted to a pumpable lasso certificate by the same candidate
     detection the exhaustive search uses. *)
  let open Slx_tm in
  let r =
    Live_explore.certify_run ~n:2
      ~factory:(fun () -> I12.factory ~vars:1)
      ~driver:(Tm_adversary.local_progress_adversary ())
      ~good:Tm_type.good
      ~point:(Freedom.wait_freedom ~n:2)
      ~max_steps:400 ()
  in
  match r.Live_explore.outcome with
  | Live_explore.No_fair_cycle ->
      Alcotest.fail "local-progress adversary run should certify"
  | Live_explore.Lasso c ->
      check_bool "non-trivial period" true (List.length c.Lasso.c_cycle >= 2);
      check_bool "certificate re-pumps" true
        (match
           Lasso.pump ~factory:(I12.factory ~vars:1) ~repetitions:3 c
         with
        | Ok _ -> true
        | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* JSON surfaces.                                                      *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_grid_json () =
  let j = Figure1.to_json (Figure1.consensus_exhaustive ~n:2 ~depth:8 ()) in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "grid JSON contains %s" needle) true
        (contains j needle))
    [
      "\"n\": 2";
      "\"cells\": [";
      "{\"l\": 1, \"k\": 1, \"color\": \"not_excluded\"}";
      "{\"l\": 1, \"k\": 2, \"color\": \"excluded\"}";
    ]

let test_stats_json_has_cycle_counters () =
  let r = search_register ~depth:8 (Freedom.make ~l:1 ~k:2) in
  let j = Explore_stats.to_json r.Live_explore.stats in
  check_bool "cycles_examined serialized" true (contains j "\"cycles_examined\"");
  check_bool "fair_cycles serialized" true (contains j "\"fair_cycles\"");
  let m = Explore_stats.merge r.Live_explore.stats r.Live_explore.stats in
  check_int "merge sums cycle counters"
    (2 * r.Live_explore.stats.Explore_stats.cycles_examined)
    m.Explore_stats.cycles_examined

let suites =
  [
    ( "live-explore: fair-cycle search",
      [
        quick "register: (1,2) lasso at depth 8" test_register_lasso_for_1_2;
        quick "register: no (1,1) lasso under solo windows"
          test_register_no_lasso_for_1_1;
        quick "register: (2,2) lasso" test_register_lasso_for_2_2;
        quick "CAS: no lasso anywhere" test_cas_no_lasso_anywhere;
        quick "witness deterministic across configs"
          test_witness_deterministic_across_configs;
        quick "invoke-order reduction sound" test_invoke_order_reduction_sound;
      ] );
    ( "live-explore: certificates",
      [
        quick "boundary digest repeats exactly" test_cert_digest_repeats_exactly;
        quick "pump rejects the wrong instance" test_pump_rejects_wrong_instance;
        quick "pump argument errors" test_pump_argument_errors;
      ]
      @ qcheck [ prop_lasso_pumps ] );
    ( "live-explore: cross-validation (E20)",
      [
        quick "exhaustive grid matches adversary games"
          test_exhaustive_grid_matches_games;
        quick "I12 local-progress run certifies"
          test_certify_run_i12_local_progress;
        quick "grid JSON" test_grid_json;
        quick "stats JSON cycle counters" test_stats_json_has_cycle_counters;
      ] );
  ]
