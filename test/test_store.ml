(* The persistent verdict store's suite (ISSUE: persistent fingerprint
   store + slx serve).

   Three layers, mirroring the subsystem:
   - the codec: round-trips, and every corruption mode the format
     promises to survive — truncated tails and flipped bytes drop
     frames (counted, never fatal), version/magic mismatches
     invalidate wholesale;
   - the policy ({!Slx_store.Persist}): cold runs record, exact
     re-queries warm-serve (witnesses replayed, lassos re-pumped),
     deeper queries resume from stored frontiers — and a corrupt or
     mismatched store degrades to cold with the identical verdict;
   - the differential contract, on the whole audit registry: with the
     store in any state (off, cold, warm, resumed) the verdict, the
     run count, and the lex-least witness are byte-identical. *)

open Slx_sim
open Slx_core
open Slx_liveness
open Support
module Store = Slx_store.Store
module Persist = Slx_store.Persist
module Audit = Slx_analysis.Audit
module Registry = Slx_analysis.Audit_registry

let temp_store () =
  let path = Filename.temp_file "slx_test" ".store" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let show_script pp_inv ds =
  String.concat ";"
    (List.map
       (function
         | Driver.Schedule p -> Printf.sprintf "S%d" p
         | Driver.Invoke (p, i) -> Printf.sprintf "I%d(%s)" p (pp_inv i)
         | Driver.Crash p -> Printf.sprintf "C%d" p
         | Driver.Stop -> "stop")
       ds)

(* ------------------------------------------------------------------ *)
(* Codec: round-trip and corruption.                                   *)

let sample_records =
  [
    {
      Store.r_qid = 11;
      r_depth = 5;
      r_max_period = 0;
      r_pump_ticks = 0;
      r_runs = 42;
      r_steps = 420;
      r_verdict = Store.V_ok 42;
      r_frontier =
        Some
          {
            Store.f_base_runs = 40;
            f_base_digest = 123456789;
            f_seeds =
              [
                { Store.sd_script = [ 4; 8; 15 ]; sd_sleep = [ 3 ] };
                (* Empty payloads must survive the line codec. *)
                { Store.sd_script = [ 16 ]; sd_sleep = [] };
              ];
          };
    }
    ;
    {
      Store.r_qid = 11;
      r_depth = 7;
      r_max_period = 0;
      r_pump_ticks = 0;
      r_runs = 0;
      r_steps = 9;
      r_verdict = Store.V_counterexample [ 5; 9; 2 ];
      r_frontier = None;
    }
    ;
    {
      Store.r_qid = 22;
      r_depth = 6;
      r_max_period = 3;
      r_pump_ticks = 24;
      r_runs = 100;
      r_steps = 1000;
      r_verdict = Store.V_no_fair_cycle;
      r_frontier =
        Some
          {
            Store.f_base_runs = 0;
            f_base_digest = 0;
            f_seeds = [ { Store.sd_script = [ 5; 5 ]; sd_sleep = [ 258; 1 ] } ];
          };
    }
    ;
    {
      Store.r_qid = 33;
      r_depth = 8;
      r_max_period = 4;
      r_pump_ticks = 32;
      r_runs = 7;
      r_steps = 77;
      r_verdict = Store.V_lasso { stem = [ 5; 9 ]; cycle = [ 0; 4 ] };
      r_frontier = None;
    }
  ]

let populate path =
  let st = Store.open_ path in
  List.iter (Store.add st) sample_records;
  Store.bump st `Query;
  Store.bump st `Cold;
  Store.bump st `Query;
  Store.bump st (`Warm 420);
  Store.commit st;
  st

let test_round_trip () =
  let path = temp_store () in
  let _ = populate path in
  let st = Store.open_ path in
  let h = Store.health st in
  check_bool "reopen is clean" true
    (h.Store.h_invalidated = None && h.Store.h_records_dropped = 0);
  Alcotest.(check int) "all records survive" 4 (List.length (Store.records st));
  List.iter
    (fun r ->
      match Store.find st ~qid:r.Store.r_qid ~depth:r.Store.r_depth with
      | Some r' -> check_bool "record round-trips" true (r = r')
      | None -> Alcotest.failf "record (%d, %d) lost" r.Store.r_qid r.Store.r_depth)
    sample_records;
  let c = Store.counters st in
  check_bool "counters round-trip" true
    (c.Store.c_queries = 2 && c.Store.c_warm_hits = 1 && c.Store.c_colds = 1
   && c.Store.c_steps_saved = 420)

let file_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let write_bytes path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_truncated_tail () =
  let path = temp_store () in
  let _ = populate path in
  let b = file_bytes path in
  write_bytes path (Bytes.sub b 0 (Bytes.length b - 3));
  let st = Store.open_ path in
  let h = Store.health st in
  check_bool "not invalidated wholesale" true (h.Store.h_invalidated = None);
  check_bool "the torn tail frame is counted" true
    (h.Store.h_records_dropped >= 1);
  (* Counters are committed right after the header and records
     oldest-first after them, so a torn tail costs exactly the
     newest record: everything before it must survive. *)
  Alcotest.(check int) "earlier frames survive" 3
    (List.length (Store.records st));
  check_bool "counters frame is intact" true
    ((Store.counters st).Store.c_queries = 2)

let test_crc_flip () =
  let path = temp_store () in
  let _ = populate path in
  let b = file_bytes path in
  let off = Bytes.length b - 5 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x5a));
  write_bytes path b;
  let st = Store.open_ path in
  let h = Store.health st in
  check_bool "not invalidated wholesale" true (h.Store.h_invalidated = None);
  check_bool "the corrupt frame is dropped and counted" true
    (h.Store.h_records_dropped >= 1);
  check_bool "other frames survive" true (List.length (Store.records st) >= 3)

let test_bad_magic () =
  let path = temp_store () in
  let _ = populate path in
  let b = file_bytes path in
  Bytes.set b 0 'X';
  write_bytes path b;
  let st = Store.open_ path in
  check_bool "whole file invalidated" true
    ((Store.health st).Store.h_invalidated <> None);
  Alcotest.(check int) "read as empty" 0 (List.length (Store.records st))

let test_engine_mismatch () =
  let path = temp_store () in
  let _ = populate path in
  let st = Store.open_ ~engine_version:"slx-engine-bogus" path in
  check_bool "engine mismatch invalidates" true
    ((Store.health st).Store.h_invalidated <> None);
  Alcotest.(check int) "no stale verdicts cross an engine change" 0
    (List.length (Store.records st));
  (* The next commit under the new engine re-founds the file. *)
  Store.add st (List.hd sample_records);
  Store.commit st;
  let st' = Store.open_ ~engine_version:"slx-engine-bogus" path in
  check_bool "re-founded store is clean" true
    ((Store.health st').Store.h_invalidated = None
    && List.length (Store.records st') = 1)

let test_qid_binds_flags () =
  let base ?por ?dpor ?symmetry ?invoke_order ?proviso_bound
      ?(registry_digest = 99) () =
    Persist.query_key ~ident:"cas" ~check:"consensus-safety" ~n:2
      ~registry_digest ?por ?dpor ?symmetry ?invoke_order ?proviso_bound ()
  in
  let q0 = base () in
  List.iteri
    (fun i q ->
      check_bool (Printf.sprintf "flag variant %d lands on a fresh qid" i)
        false (q = q0))
    [
      base ~por:true ();
      base ~dpor:true ();
      base ~symmetry:true ();
      base ~invoke_order:true ();
      base ~proviso_bound:3 ();
      base ~registry_digest:100 ();
      Persist.query_key ~ident:"cas" ~check:"live:(1,1)-freedom" ~n:2
        ~registry_digest:99 ();
    ];
  check_bool "the digest is deterministic" true (q0 = base ());
  (* A mismatched qid is a store miss, not a wrong answer. *)
  let path = temp_store () in
  let st = Store.open_ path in
  Store.add st
    { (List.hd sample_records) with Store.r_qid = q0; r_depth = 5 };
  check_bool "exact qid hits" true (Store.find st ~qid:q0 ~depth:5 <> None);
  check_bool "flag-variant qid misses" true
    (Store.find st ~qid:(base ~por:true ()) ~depth:5 = None)

let test_supersede_and_resumable () =
  let path = temp_store () in
  let st = Store.open_ path in
  let mk depth verdict frontier =
    {
      Store.r_qid = 7;
      r_depth = depth;
      r_max_period = 0;
      r_pump_ticks = 0;
      r_runs = 1;
      r_steps = 1;
      r_verdict = verdict;
      r_frontier = frontier;
    }
  in
  let fr = Some { Store.f_base_runs = 1; f_base_digest = 2; f_seeds = [] } in
  Store.add st (mk 4 (Store.V_ok 1) fr);
  Store.add st (mk 5 (Store.V_counterexample [ 1 ]) fr);
  Store.add st (mk 6 (Store.V_ok 2) None);
  Store.add st (mk 4 (Store.V_ok 9) fr);
  Store.commit st;
  let st = Store.open_ path in
  (match Store.find st ~qid:7 ~depth:4 with
  | Some { Store.r_verdict = Store.V_ok 9; _ } -> ()
  | _ -> Alcotest.fail "later record must supersede the slot");
  (* depth 6 has no frontier, depth 5 is a counterexample: the deepest
     resumable base below depth 8 is the superseded-in-place depth 4. *)
  match Store.best_resumable st ~qid:7 ~depth:8 with
  | Some { Store.r_depth = 4; r_verdict = Store.V_ok 9; _ } -> ()
  | Some r -> Alcotest.failf "wrong resume base: depth %d" r.Store.r_depth
  | None -> Alcotest.fail "expected a resumable record"

(* ------------------------------------------------------------------ *)
(* Persist policy on the consensus engines.                            *)

let cas_factory () = Slx_consensus.Cas_consensus.factory ()
let selfish_factory () = Slx_consensus.Selfish_consensus.factory ()

let safety_invoke =
  Explore.workload_invoke
    (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))

let live_invoke =
  Explore.workload_invoke
    (Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1)))

let consensus_check r =
  Slx_consensus.Consensus_safety.check r.Run_report.history

let pp_consensus_inv (Slx_consensus.Consensus_type.Propose v) =
  "propose " ^ string_of_int v

let safety_qid ~ident ~factory =
  Persist.query_key ~ident ~check:"consensus-safety" ~n:2
    ~registry_digest:(Persist.instance_digest ~n:2 ~factory)
    ~por:true ~dpor:true ~symmetry:true ()

let run_safety ~store ~qid ~factory ~depth () =
  Persist.run_explore ~store ~qid ~n:2 ~factory ~invoke:safety_invoke ~depth
    ~por:true ~dpor:true ~symmetry:true ~check:consensus_check ()

let test_persist_cold_warm_resume () =
  let path = temp_store () in
  let st = Store.open_ path in
  let qid = safety_qid ~ident:"cas" ~factory:cas_factory in
  let plain depth =
    Explore.explore ~n:2 ~factory:cas_factory ~invoke:safety_invoke ~depth
      ~por:true ~dpor:true ~symmetry:true ~check:consensus_check ()
  in
  let runs_of e =
    match e.Explore.outcome with
    | Explore.Ok n -> n
    | Explore.Counterexample _ -> Alcotest.fail "cas must be safe"
  in
  let cold, src = run_safety ~store:st ~qid ~factory:cas_factory ~depth:6 () in
  check_bool "first query is cold" true (src = Persist.Cold);
  Alcotest.(check int) "cold = storeless" (runs_of (plain 6)) (runs_of cold);
  let warm, src = run_safety ~store:st ~qid ~factory:cas_factory ~depth:6 () in
  check_bool "identical re-query is warm" true (src = Persist.Warm);
  Alcotest.(check int) "warm restores the verdict" (runs_of cold)
    (runs_of warm);
  check_bool "warm does no engine work" true
    (warm.Explore.stats.Explore_stats.nodes = 0);
  let deep, src = run_safety ~store:st ~qid ~factory:cas_factory ~depth:8 () in
  check_bool "deeper query resumes" true (src = Persist.Resumed 6);
  Alcotest.(check int) "resumed = storeless" (runs_of (plain 8)) (runs_of deep);
  let c = Store.counters st in
  check_bool "counters tell the story" true
    (c.Store.c_queries = 3 && c.Store.c_warm_hits = 1 && c.Store.c_resumes = 1
   && c.Store.c_colds = 1)

let test_persist_witness_warm () =
  let path = temp_store () in
  let st = Store.open_ path in
  let qid = safety_qid ~ident:"selfish" ~factory:selfish_factory in
  let witness e =
    match e.Explore.witness_script with
    | Some ds -> show_script pp_consensus_inv ds
    | None -> Alcotest.fail "selfish must yield a counterexample"
  in
  let cold, src =
    run_safety ~store:st ~qid ~factory:selfish_factory ~depth:6 ()
  in
  check_bool "cold source" true (src = Persist.Cold);
  let warm, src =
    run_safety ~store:st ~qid ~factory:selfish_factory ~depth:6 ()
  in
  check_bool "witness served warm after replay validation" true
    (src = Persist.Warm);
  Alcotest.(check string) "identical lex-least witness" (witness cold)
    (witness warm)

let test_persist_corrupt_fallback () =
  let path = temp_store () in
  let st = Store.open_ path in
  let qid = safety_qid ~ident:"cas" ~factory:cas_factory in
  let first, _ = run_safety ~store:st ~qid ~factory:cas_factory ~depth:6 () in
  (* Trash the committed file wholesale; the re-opened store must read
     as empty and the query must fall back to a cold run with the
     byte-identical verdict. *)
  write_bytes path (Bytes.of_string "SLXSTOR1 this is not a store");
  let st = Store.open_ path in
  check_bool "corruption is surfaced, not fatal" true
    ((Store.health st).Store.h_invalidated <> None
    || (Store.health st).Store.h_records_dropped > 0);
  let again, src = run_safety ~store:st ~qid ~factory:cas_factory ~depth:6 () in
  check_bool "fallback is cold" true (src = Persist.Cold);
  check_bool "verdict identical" true
    (match (first.Explore.outcome, again.Explore.outcome) with
    | Explore.Ok a, Explore.Ok b -> a = b
    | _ -> false)

let test_persist_bitstate_bypass () =
  let path = temp_store () in
  let st = Store.open_ path in
  let qid = safety_qid ~ident:"cas" ~factory:cas_factory in
  let _, src =
    Persist.run_explore ~store:st ~qid ~n:2 ~factory:cas_factory
      ~invoke:safety_invoke ~depth:6 ~por:true ~dpor:true ~symmetry:true
      ~bitstate:12 ~check:consensus_check ()
  in
  check_bool "bitstate runs bypass the store" true
    (src = Persist.Uncached "bitstate");
  check_bool "and leave no record behind" true (Store.records st = []);
  check_bool "and no counters" true ((Store.counters st).Store.c_queries = 0)

(* Liveness: cold/warm/resume with pinned pump budget, and lasso
   re-validation on the Theorem 5.2 register certificate. *)

let register8_factory () =
  Slx_consensus.Register_consensus.factory ~max_rounds:8 ()

let live_qid ~ident ~factory ~point =
  Persist.query_key ~ident
    ~check:("live:" ^ Format.asprintf "%a" Freedom.pp point)
    ~n:2
    ~registry_digest:(Persist.instance_digest ~n:2 ~factory)
    ~dpor:true ()

let test_persist_live_cold_warm_resume () =
  let path = temp_store () in
  let st = Store.open_ path in
  let point = Freedom.obstruction_freedom in
  let qid = live_qid ~ident:"selfish" ~factory:selfish_factory ~point in
  let good (_ : Slx_consensus.Consensus_type.response) = true in
  let run depth =
    Persist.run_live ~store:st ~qid ~n:2 ~factory:selfish_factory
      ~invoke:live_invoke ~good ~point ~depth ~pump_ticks:32 ~dpor:true ()
  in
  let plain depth =
    Live_explore.search ~n:2 ~factory:selfish_factory ~invoke:live_invoke
      ~good ~point ~depth ~pump_ticks:32 ~dpor:true ()
  in
  let outcome r =
    match r.Live_explore.outcome with
    | Live_explore.No_fair_cycle -> "no_fair_cycle"
    | Live_explore.Lasso _ -> "lasso"
  in
  let cold, src = run 6 in
  check_bool "live cold" true (src = Persist.Cold);
  Alcotest.(check string) "cold = storeless" (outcome (plain 6)) (outcome cold);
  let warm, src = run 6 in
  check_bool "live warm" true (src = Persist.Warm);
  Alcotest.(check string) "warm verdict identical" (outcome cold)
    (outcome warm);
  let deep, src = run 8 in
  check_bool "live resume (pinned pump)" true (src = Persist.Resumed 6);
  Alcotest.(check string) "resumed = storeless" (outcome (plain 8))
    (outcome deep);
  Alcotest.(check int) "resumed run count = storeless"
    (plain 8).Live_explore.stats.Explore_stats.runs
    deep.Live_explore.stats.Explore_stats.runs

let test_persist_lasso_warm () =
  let path = temp_store () in
  let st = Store.open_ path in
  let point = Freedom.make ~l:1 ~k:2 in
  let qid = live_qid ~ident:"register" ~factory:register8_factory ~point in
  let good (_ : Slx_consensus.Consensus_type.response) = true in
  let run () =
    Persist.run_live ~store:st ~qid ~n:2 ~factory:register8_factory
      ~invoke:live_invoke ~good ~point ~depth:8 ~dpor:true ()
  in
  let cert r =
    match r.Live_explore.outcome with
    | Live_explore.Lasso c -> c
    | Live_explore.No_fair_cycle ->
        Alcotest.fail "register (1,2) at depth 8 must yield a lasso"
  in
  let cold, src = run () in
  check_bool "lasso found cold" true (src = Persist.Cold);
  let warm, src = run () in
  check_bool "lasso re-validated and served warm" true (src = Persist.Warm);
  let b = cert cold and c = cert warm in
  Alcotest.(check string) "identical stem"
    (show_script pp_consensus_inv b.Lasso.c_stem)
    (show_script pp_consensus_inv c.Lasso.c_stem);
  Alcotest.(check string) "identical cycle"
    (show_script pp_consensus_inv b.Lasso.c_cycle)
    (show_script pp_consensus_inv c.Lasso.c_cycle)

(* ------------------------------------------------------------------ *)
(* Differential sweep: every registry case, store off/cold/warm/       *)
(* resumed — identical verdicts, runs, and lex-least witnesses.        *)

let diff_store_case (Audit.Case c) =
  let depth = min c.Audit.c_depth 5 in
  let max_crashes = min c.Audit.c_max_crashes 1 in
  let name = c.Audit.c_name in
  let plain ~depth ~check =
    Explore.explore ~n:c.Audit.c_n ~factory:c.Audit.c_factory
      ~invoke:c.Audit.c_invoke ~depth ~max_crashes ~dpor:true ~check ()
  in
  let stored ~store ~qid ~depth ~check =
    Persist.run_explore ~store ~qid ~n:c.Audit.c_n ~factory:c.Audit.c_factory
      ~invoke:c.Audit.c_invoke ~depth ~max_crashes ~dpor:true ~check ()
  in
  let qid_of ~check_name =
    Persist.query_key ~ident:name ~check:check_name ~n:c.Audit.c_n
      ~registry_digest:
        (Persist.instance_digest ~n:c.Audit.c_n ~factory:c.Audit.c_factory)
      ~max_crashes ~dpor:true ()
  in
  (* Passing leg: run-count identity across store states, including a
     resume from the frontier cut one level shallower. *)
  let st = Store.open_ (temp_store ()) in
  let qid = qid_of ~check_name:"diff-true" in
  let runs e =
    match e.Explore.outcome with
    | Explore.Ok n -> n
    | Explore.Counterexample _ ->
        Alcotest.failf "%s: always-true check failed" name
  in
  let base = runs (plain ~depth ~check:(fun _ -> true)) in
  let shallow, src =
    stored ~store:st ~qid ~depth:(depth - 1) ~check:(fun _ -> true)
  in
  check_bool (name ^ ": shallow leg is cold") true (src = Persist.Cold);
  ignore (runs shallow);
  let resumed, src = stored ~store:st ~qid ~depth ~check:(fun _ -> true) in
  check_bool
    (name ^ ": full-depth leg resumes the shallow frontier")
    true
    (src = Persist.Resumed (depth - 1));
  Alcotest.(check int) (name ^ ": resumed runs = storeless") base
    (runs resumed);
  let warm, src = stored ~store:st ~qid ~depth ~check:(fun _ -> true) in
  check_bool (name ^ ": re-query is warm") true (src = Persist.Warm);
  Alcotest.(check int) (name ^ ": warm runs = storeless") base (runs warm);
  (* Failing leg: lex-least witness identity cold vs warm (the warm
     hit replays the stored script through the real engine). *)
  let qidx = qid_of ~check_name:"diff-false" in
  let witness e =
    match e.Explore.witness_script with
    | Some ds -> show_script c.Audit.c_pp_inv ds
    | None -> Alcotest.failf "%s: always-false check found no witness" name
  in
  let basex = witness (plain ~depth ~check:(fun _ -> false)) in
  let coldx, src =
    stored ~store:st ~qid:qidx ~depth ~check:(fun _ -> false)
  in
  check_bool (name ^ ": failing leg is cold") true (src = Persist.Cold);
  Alcotest.(check string) (name ^ ": cold witness = storeless") basex
    (witness coldx);
  let warmx, src =
    stored ~store:st ~qid:qidx ~depth ~check:(fun _ -> false)
  in
  check_bool (name ^ ": failing leg warm-serves") true (src = Persist.Warm);
  Alcotest.(check string) (name ^ ": warm witness = storeless") basex
    (witness warmx)

let test_store_differential () = List.iter diff_store_case (Registry.all ())

let diff_store_live_case (Audit.Case c) =
  let depth = min c.Audit.c_depth 5 in
  let name = c.Audit.c_name in
  let pump_ticks = 4 * depth in
  let point = Freedom.make ~l:1 ~k:1 in
  let good _ = false in
  let qid =
    Persist.query_key ~ident:name ~check:"live:diff" ~n:c.Audit.c_n
      ~registry_digest:
        (Persist.instance_digest ~n:c.Audit.c_n ~factory:c.Audit.c_factory)
      ~dpor:true ()
  in
  let plain ~depth =
    Live_explore.search ~n:c.Audit.c_n ~factory:c.Audit.c_factory
      ~invoke:c.Audit.c_invoke ~good ~point ~depth ~pump_ticks ~dpor:true ()
  in
  let stored ~store ~depth =
    Persist.run_live ~store ~qid ~n:c.Audit.c_n ~factory:c.Audit.c_factory
      ~invoke:c.Audit.c_invoke ~good ~point ~depth ~pump_ticks ~dpor:true ()
  in
  (* Verdict fingerprint only: a warm hit synthesizes zero-work stats,
     so run counts are compared separately on the legs that really
     explore. *)
  let fingerprint r =
    match r.Live_explore.outcome with
    | Live_explore.No_fair_cycle -> "no_fair_cycle"
    | Live_explore.Lasso l ->
        show_script c.Audit.c_pp_inv l.Lasso.c_stem
        ^ "~" ^ show_script c.Audit.c_pp_inv l.Lasso.c_cycle
  in
  let st = Store.open_ (temp_store ()) in
  let base = fingerprint (plain ~depth) in
  let shallow, src = stored ~store:st ~depth:(depth - 1) in
  check_bool (name ^ ": live shallow leg is cold") true (src = Persist.Cold);
  ignore shallow;
  let resumed, src = stored ~store:st ~depth in
  check_bool (name ^ ": live leg resumes or recomputes soundly") true
    (match src with
    | Persist.Resumed d -> d = depth - 1
    | Persist.Cold -> true (* shallow verdict was a lasso: not resumable *)
    | _ -> false);
  Alcotest.(check string) (name ^ ": live resumed = storeless") base
    (fingerprint resumed);
  Alcotest.(check int) (name ^ ": live resumed runs = storeless")
    (plain ~depth).Live_explore.stats.Explore_stats.runs
    resumed.Live_explore.stats.Explore_stats.runs;
  let warm, src = stored ~store:st ~depth in
  check_bool (name ^ ": live re-query is warm") true (src = Persist.Warm);
  Alcotest.(check string) (name ^ ": live warm = storeless") base
    (fingerprint warm)

let test_store_live_differential () =
  List.iter diff_store_live_case (Registry.all ())

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "store.codec",
      [
        Alcotest.test_case "round-trip" `Quick test_round_trip;
        Alcotest.test_case "truncated tail" `Quick test_truncated_tail;
        Alcotest.test_case "flipped byte" `Quick test_crc_flip;
        Alcotest.test_case "bad magic" `Quick test_bad_magic;
        Alcotest.test_case "engine version mismatch" `Quick
          test_engine_mismatch;
        Alcotest.test_case "qid binds flags and registry" `Quick
          test_qid_binds_flags;
        Alcotest.test_case "supersede and best_resumable" `Quick
          test_supersede_and_resumable;
      ] );
    ( "store.persist",
      [
        Alcotest.test_case "cold, warm, resume" `Quick
          test_persist_cold_warm_resume;
        Alcotest.test_case "witness warm-served after replay" `Quick
          test_persist_witness_warm;
        Alcotest.test_case "corrupt store falls back cold" `Quick
          test_persist_corrupt_fallback;
        Alcotest.test_case "bitstate bypasses the store" `Quick
          test_persist_bitstate_bypass;
        Alcotest.test_case "live cold, warm, resume" `Quick
          test_persist_live_cold_warm_resume;
        Alcotest.test_case "lasso re-validated warm" `Quick
          test_persist_lasso_warm;
      ] );
    ( "store.differential",
      [
        Alcotest.test_case "registry sweep, safety legs" `Slow
          test_store_differential;
        Alcotest.test_case "registry sweep, liveness legs" `Slow
          test_store_live_differential;
      ] );
  ]
