(* Differential validation of the two central checkers: the memoized
   searches (linearizability, opacity) must agree with naive
   brute-force references on every small instance we can enumerate. *)

open Slx_history
open Slx_sim
open Support

(* ------------------------------------------------------------------ *)
(* Brute-force linearizability: try every permutation of operations.   *)

let permutations xs =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: rest as l ->
        (x :: l) :: List.map (fun l' -> y :: l') (insert x rest)
  in
  List.fold_left
    (fun perms x -> List.concat_map (insert x) perms)
    [ [] ] xs

(* A permutation witnesses linearizability if it respects real time
   and replays legally; pending operations may be dropped (checked by
   trying all subsets of pending ops). *)
let brute_linearizable (h : (Register_type.invocation, Register_type.response) History.t) =
  let ops = Op.of_history h in
  let completed, pending = List.partition Op.is_complete ops in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let tails = subsets rest in
        List.map (fun s -> x :: s) tails @ tails
  in
  let respects_real_time order =
    let rec go = function
      | [] -> true
      | o :: rest ->
          List.for_all (fun o' -> not (Op.precedes o' o)) rest && go rest
    in
    go order
  in
  let legal order =
    let rec go st = function
      | [] -> true
      | op :: rest -> begin
          match Register_type.seq op.Op.inv st with
          | [ (st', res) ] -> begin
              match op.Op.res with
              | Some r -> r = res && go st' rest
              | None -> go st' rest
            end
          | _ -> false
        end
    in
    go Register_type.initial order
  in
  List.exists
    (fun chosen_pending ->
      List.exists
        (fun order -> respects_real_time order && legal order)
        (permutations (completed @ chosen_pending)))
    (subsets pending)

module Lin = Slx_safety.Linearizability.Make (Register_type)

let prop_lin_matches_brute_force =
  QCheck2.Test.make ~name:"linearizability search = brute force" ~count:120
    ~print:register_history_print
    (well_formed_register_history_gen ~n:3 ~len:8)
    (fun h ->
      (* keep the factorial reference feasible *)
      List.length (Op.of_history h) > 6
      || Lin.check h = brute_linearizable h)

(* ------------------------------------------------------------------ *)
(* Brute-force opacity: try every transaction permutation and every
   completion of commit-pending transactions.                          *)

open Slx_tm

let brute_opaque txns =
  let respects_real_time order =
    let rec go = function
      | [] -> true
      | t :: rest ->
          List.for_all (fun t' -> not (Transaction.precedes t' t)) rest
          && go rest
    in
    go order
  in
  (* completions: a bool per commit-pending transaction. *)
  let pending =
    List.filter
      (fun t -> t.Transaction.status = Transaction.Commit_pending)
      txns
  in
  let rec completion_choices = function
    | [] -> [ [] ]
    | t :: rest ->
        let tails = completion_choices rest in
        List.concat_map
          (fun tail -> [ (t, true) :: tail; (t, false) :: tail ])
          tails
  in
  let commits_under choice t =
    match t.Transaction.status with
    | Transaction.Committed -> true
    | Transaction.Aborted | Transaction.Live -> false
    | Transaction.Commit_pending -> List.assq t choice
  in
  let legal choice order =
    let read store x =
      Option.value (List.assoc_opt x store) ~default:Tm_type.initial_value
    in
    let rec go store = function
      | [] -> true
      | t :: rest ->
          let rec ops local = function
            | [] -> true
            | Transaction.Write_op (x, v) :: more -> ops ((x, v) :: local) more
            | Transaction.Read_op (x, v) :: more ->
                let expected =
                  match List.assoc_opt x local with
                  | Some w -> w
                  | None -> read store x
                in
                v = expected && ops local more
          in
          ops [] t.Transaction.ops
          &&
          let store' =
            if commits_under choice t then
              List.fold_left
                (fun acc (x, v) -> (x, v) :: List.remove_assoc x acc)
                store (Transaction.writes t)
            else store
          in
          go store' rest
    in
    go [] order
  in
  List.exists
    (fun choice ->
      List.exists
        (fun order -> respects_real_time order && legal choice order)
        (permutations txns))
    (completion_choices pending)

let prop_opacity_matches_brute_force =
  QCheck2.Test.make ~name:"opacity search = brute force" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      (* Short real runs of I(1,2) and, mutated, broken variants:
         randomly flip one response payload to explore the negative
         side too. *)
      let r =
        Runner.run ~n:2 ~factory:(I12.factory ~vars:2)
          ~driver:(Tm_workload.random ~seed ())
          ~max_steps:40 ()
      in
      let h = r.Run_report.history in
      let mutate h =
        (* Flip the value of the first read response, making the
           history likely non-opaque. *)
        let flipped = ref false in
        History.map
          ~inv:(fun i -> i)
          ~res:(fun res ->
            match res with
            | Tm_type.Val v when not !flipped ->
                flipped := true;
                Tm_type.Val (v + 100)
            | r -> r)
          h
      in
      let agree h =
        let txns = Transaction.of_history h in
        List.length txns > 6
        || Opacity.serializable txns = brute_opaque txns
      in
      agree h && agree (mutate h))

(* ------------------------------------------------------------------ *)
(* Differential validation of the exploration engines: the incremental
   cached (and parallel) explorer must visit exactly the maximal runs
   the retained naive replay reference visits.  Cache-off engines are
   compared on the exact multiset of final histories (collected through
   the check callback); cached engines never materialize pruned runs,
   so they are compared on the run count and the order-insensitive
   history digest the engines maintain for precisely this purpose.     *)

open Slx_core

let explorer_equivalence name ~factory ~invoke ~depth ~max_crashes =
  let collect acc r =
    acc := Slx_sim.Runtime.hash_value r.Run_report.history :: !acc;
    true
  in
  let multiset acc = List.sort compare !acc in
  let naive_hist = ref [] in
  let naive =
    Explore.explore_naive ~n:2 ~factory ~invoke ~depth ~max_crashes
      ~check:(collect naive_hist) ()
  in
  let nocache_hist = ref [] in
  let nocache =
    Explore.explore ~n:2 ~factory ~invoke ~depth ~max_crashes ~cache:false
      ~check:(collect nocache_hist) ()
  in
  (* Exact multiset of final histories, run by run. *)
  check_bool
    (name ^ ": cache-off engine visits the identical run multiset")
    true
    (multiset naive_hist = multiset nocache_hist);
  let runs e =
    match e.Explore.outcome with
    | Explore.Ok n -> n
    | Explore.Counterexample _ -> Alcotest.fail (name ^ ": unexpected violation")
  in
  let digest e = e.Explore.stats.Explore_stats.history_digest in
  check_int (name ^ ": cache-off run count") (runs naive) (runs nocache);
  (* Work-stealing with the cache off visits every maximal run exactly
     once too, split across domains — compare the exact multiset again,
     accumulated through an atomic (check runs concurrently). *)
  let ws_hist = Atomic.make [] in
  let ws_collect r =
    let h = Slx_sim.Runtime.hash_value r.Run_report.history in
    let rec add () =
      let cur = Atomic.get ws_hist in
      if not (Atomic.compare_and_set ws_hist cur (h :: cur)) then add ()
    in
    add ();
    true
  in
  let ws =
    Explore.explore ~n:2 ~factory ~invoke ~depth ~max_crashes ~cache:false
      ~domains:3 ~check:ws_collect ()
  in
  check_bool
    (name ^ ": work-stealing cache-off engine visits the identical run \
             multiset")
    true
    (multiset naive_hist = List.sort compare (Atomic.get ws_hist));
  check_int (name ^ ": work-stealing run count") (runs naive) (runs ws);
  (* Cached engines, sequential and fanned out: count + digest. *)
  let check r = ignore (r : _ Run_report.t); true in
  let cached =
    Explore.explore ~n:2 ~factory ~invoke ~depth ~max_crashes ~check ()
  in
  let parallel =
    Explore.explore ~n:2 ~factory ~invoke ~depth ~max_crashes ~domains:3
      ~check ()
  in
  List.iter
    (fun (engine, e) ->
      check_int (name ^ ": " ^ engine ^ " run count") (runs naive) (runs e);
      check_bool (name ^ ": " ^ engine ^ " history digest") true
        (digest naive = digest e))
    [ ("cached", cached); ("parallel", parallel) ];
  (* Reduced engines explore representatives only: the run count drops
     but the verdict must agree with naive on the same instance, and
     each reduced configuration must be self-deterministic (same count
     and digest on a re-run). *)
  List.iter
    (fun (engine, por, symmetry, domains) ->
      let reduced () =
        Explore.explore ~n:2 ~factory ~invoke ~depth ~max_crashes ~por
          ~symmetry ~domains ~check ()
      in
      let e = reduced () and e' = reduced () in
      check_bool (name ^ ": " ^ engine ^ " verdict agrees with naive") true
        (match (e.Explore.outcome, naive.Explore.outcome) with
        | Explore.Ok _, Explore.Ok _ -> true
        | Explore.Counterexample _, Explore.Counterexample _ -> true
        | _ -> false);
      check_bool
        (name ^ ": " ^ engine ^ " explores a nonempty subset of the runs")
        true
        (runs e >= 1 && runs e <= runs naive);
      check_int (name ^ ": " ^ engine ^ " is deterministic (count)") (runs e)
        (runs e');
      check_bool (name ^ ": " ^ engine ^ " is deterministic (digest)") true
        (digest e = digest e'))
    [
      ("por", true, false, 1);
      ("symmetry", false, true, 1);
      ("por+symmetry", true, true, 1);
      ("por+symmetry work-stealing", true, true, 3);
    ]

let one_proposal =
  Explore.workload_invoke
    (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))

let one_txn view p =
  let h = History.project view.Driver.history p in
  let has inv =
    History.count (fun e -> Event.invocation e = Some inv) h > 0
  in
  if not (has Tm_type.Start) then Some Tm_type.Start
  else if not (has Tm_type.Try_commit) then Some Tm_type.Try_commit
  else None

let test_explorers_agree_consensus () =
  explorer_equivalence "cas-consensus"
    ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
    ~invoke:one_proposal ~depth:8 ~max_crashes:0

let test_explorers_agree_consensus_crashes () =
  explorer_equivalence "cas-consensus-crashes"
    ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
    ~invoke:one_proposal ~depth:7 ~max_crashes:1

let test_explorers_agree_register_consensus () =
  explorer_equivalence "register-consensus"
    ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
    ~invoke:one_proposal ~depth:8 ~max_crashes:0

let test_explorers_agree_tm () =
  explorer_equivalence "agp-tm"
    ~factory:(fun () -> Agp_tm.factory ~vars:1)
    ~invoke:one_txn ~depth:8 ~max_crashes:0

let test_explorers_agree_tm_crashes () =
  explorer_equivalence "agp-tm-crashes"
    ~factory:(fun () -> Agp_tm.factory ~vars:1)
    ~invoke:one_txn ~depth:6 ~max_crashes:1

(* Counterexample equivalence: on a violating instance (selfish
   consensus breaks agreement) every engine configuration — naive,
   cached or not, reduced or not, sequential or fanned out — must
   report the byte-identical lexicographically-least witness script
   and failing history.  The selfish violation involves both
   processes' invocations, so no reduction can prune it away. *)
let test_explorers_agree_on_counterexample () =
  let factory () = Slx_consensus.Selfish_consensus.factory () in
  let check r = Slx_consensus.Consensus_safety.check r.Run_report.history in
  let witness e =
    match (e.Explore.outcome, e.Explore.witness_script) with
    | Explore.Counterexample r, Some script ->
        (script, Slx_sim.Runtime.hash_value r.Run_report.history)
    | _ -> Alcotest.fail "selfish consensus: expected a counterexample"
  in
  let reference =
    witness
      (Explore.explore_naive ~n:2 ~factory ~invoke:one_proposal ~depth:8
         ~check ())
  in
  List.iter
    (fun (engine, run) ->
      check_bool
        ("selfish counterexample: " ^ engine ^ " matches naive witness")
        true
        (witness (run ()) = reference))
    [
      ( "cached",
        fun () ->
          Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:8 ~check
            () );
      ( "cache-off",
        fun () ->
          Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:8
            ~cache:false ~check () );
      ( "por",
        fun () ->
          Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:8
            ~por:true ~check () );
      ( "symmetry",
        fun () ->
          Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:8
            ~symmetry:true ~check () );
      ( "por+symmetry",
        fun () ->
          Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:8
            ~por:true ~symmetry:true ~check () );
      ( "work-stealing",
        fun () ->
          Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:8
            ~domains:3 ~check () );
      ( "por+symmetry work-stealing",
        fun () ->
          Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:8
            ~por:true ~symmetry:true ~domains:3 ~check () );
      ( "bounded cache",
        fun () ->
          Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:8
            ~cache_capacity:16 ~check () );
    ]

let suites =
  [
    ( "differential",
      qcheck [ prop_lin_matches_brute_force; prop_opacity_matches_brute_force ]
    );
    ( "differential-explore",
      [
        quick "consensus run set" test_explorers_agree_consensus;
        quick "consensus run set, crashes" test_explorers_agree_consensus_crashes;
        quick "register consensus run set" test_explorers_agree_register_consensus;
        quick "TM run set" test_explorers_agree_tm;
        quick "TM run set, crashes" test_explorers_agree_tm_crashes;
        quick "counterexample equivalence" test_explorers_agree_on_counterexample;
      ] );
  ]
