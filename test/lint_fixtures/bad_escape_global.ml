(* escape-global-mutable: module-level mutable state captured by a
   function — one cell shared by every instance and every replay.
   Parse-only lint fixture; never compiled. *)
let total = ref 0

let step () =
  total := !total + 1;
  Runtime.touch ~obj:0 ~write:true
