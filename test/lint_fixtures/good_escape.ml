(* Negative twin for the escape family: registered state, function-
   local scratch, and scheduler-side (non-runtime-interacting) closure
   state are all allowed.  Parse-only lint fixture; never compiled. *)
let make init =
  let r = ref init in
  let id = Runtime.register_object (fun () -> Runtime.hash_value !r) in
  (r, id)

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let driver () =
  let cursor = ref 0 in
  fun _view ->
    incr cursor;
    !cursor
