(* det-banned-call: the global Random functions draw from hidden
   mutable state a replay does not restore.  Parse-only lint fixture;
   never compiled. *)
let pick xs = List.nth xs (Random.int (List.length xs))

let key v = Hashtbl.hash v
