(* A source that does not parse: the lint must produce a structured
   parse-error finding, not an exception.  Parse-only lint fixture. *)
let step = (fun x ->
