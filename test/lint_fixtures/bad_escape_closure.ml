(* escape-unregistered-state: a ref captured by a runtime-interacting
   step closure with no registration in scope.  Parse-only lint
   fixture; never compiled. *)
let factory ~n:_ =
  let hidden = ref 0 in
  fun ~proc:_ () ->
    Runtime.atomic_access ~obj:0 ~write:true (fun () ->
        incr hidden;
        Runtime.touch ~obj:0 ~write:true)
