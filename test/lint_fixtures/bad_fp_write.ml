(* fp-write-under-read: a write-touch under a read-only declaration.
   Parse-only lint fixture; never compiled. *)
let store (r, id) v =
  Runtime.touch ~obj:id ~write:true;
  r := v

let step a v =
  Runtime.atomic_access ~obj:(snd a) ~write:false (fun () -> store a v)
