(* fp-undeclared-handle: a handle reaches a touch under a declaration
   that never mentions it.  Parse-only lint fixture; never compiled. *)
let load (r, id) =
  Runtime.touch ~obj:id ~write:false;
  !r

let step a b =
  Runtime.atomic_access ~obj:(snd a) ~write:false (fun () ->
      ignore (load a);
      ignore (load b))
