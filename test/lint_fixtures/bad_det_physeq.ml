(* det-physical-equality: == / != depend on sharing, which replay does
   not preserve.  Parse-only lint fixture; never compiled. *)
let fast_eq a b = a == b

let distinct a b = a != b
