(* Negative twin for the footprint family: every touched handle is
   rooted in the declaration, writes declared as writes, reads under a
   write declaration allowed.  Parse-only lint fixture; never
   compiled. *)
let load (r, id) =
  Runtime.touch ~obj:id ~write:false;
  !r

let store (r, id) v =
  Runtime.touch ~obj:id ~write:true;
  r := v

let step a b v =
  Runtime.atomic_access ~obj:(snd a, snd b) ~write:true (fun () ->
      store a (v + load b);
      ignore (load a))
