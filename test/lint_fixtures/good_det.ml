(* Negative twin for the determinism family: explicitly-seeded
   Random.State is replay-deterministic; structural equality is fine.
   Parse-only lint fixture; never compiled. *)
let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let seeded seed = Random.State.make [| seed |]

let same a b = a = b && a <> []
