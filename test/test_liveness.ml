open Slx_history
open Slx_sim
open Slx_liveness
open Support

(* A toy object for synthetic reports: [Good] responses are progress,
   [Bad] ones (think: transaction aborts) are not. *)
type tinv = Go
type tres = Good | Bad

let good = function Good -> true | Bad -> false

(* Build a report directly; [events] are (time, event) pairs. *)
let report ~n ?(crashed = []) ~grants ~events ~total_time ~window () :
    (tinv, tres) Run_report.t =
  {
    Run_report.n;
    history = History.of_list (List.map snd events);
    event_times = Array.of_list (List.map fst events);
    grants;
    crashed = Proc.Set.of_list crashed;
    total_time;
    window;
    stopped = `Max_steps;
  }

(* A window-covering fair report: every process in [active] steps in
   the window; [progressing] get a Good response there. *)
let scenario ~n ?(crashed = []) ~active ~progressing () =
  let grants = List.map (fun p -> (90 + p, p)) active in
  let events =
    List.concat_map
      (fun p ->
        [
          (80 + p, Event.Invocation (p, Go));
          (95 + p, Event.Response (p, if List.mem p progressing then Good else Bad));
        ])
      active
  in
  report ~n ~crashed ~grants ~events ~total_time:100 ~window:50 ()

let lk l k = Freedom.make ~l ~k

let holds r f = Freedom.holds ~good r f

let test_make_validation () =
  Alcotest.check_raises "l > k rejected"
    (Invalid_argument "Freedom.make: requires 1 <= l <= k") (fun () ->
      ignore (Freedom.make ~l:3 ~k:2));
  Alcotest.check_raises "l = 0 rejected"
    (Invalid_argument "Freedom.make: requires 1 <= l <= k") (fun () ->
      ignore (Freedom.make ~l:0 ~k:1))

let test_aliases () =
  check_bool "obstruction-freedom = (1,1)" true
    (Freedom.equal Freedom.obstruction_freedom (lk 1 1));
  check_bool "lock-freedom = (1,n)" true
    (Freedom.equal (Freedom.lock_freedom ~n:4) (lk 1 4));
  check_bool "wait-freedom = (n,n)" true
    (Freedom.equal (Freedom.wait_freedom ~n:4) (lk 4 4));
  check_bool "l-lock-freedom" true
    (Freedom.equal (Freedom.l_lock_freedom ~l:2 ~n:5) (lk 2 5));
  check_bool "k-obstruction-freedom" true
    (Freedom.equal (Freedom.k_obstruction_freedom ~k:3) (lk 3 3))

let test_two_active_both_progress () =
  let r = scenario ~n:3 ~active:[ 1; 2 ] ~progressing:[ 1; 2 ] () in
  check_bool "(2,2) holds" true (holds r (lk 2 2));
  check_bool "(1,2) holds" true (holds r (lk 1 2));
  (* Three correct but only two progress: (3,3) violated. *)
  check_bool "(3,3) violated" false (holds r (lk 3 3))

let test_two_active_one_progresses () =
  let r = scenario ~n:3 ~active:[ 1; 2 ] ~progressing:[ 2 ] () in
  check_bool "(1,2) holds" true (holds r (lk 1 2));
  check_bool "(2,2) violated" false (holds r (lk 2 2));
  check_bool "(1,1) vacuous (two active)" true (holds r (lk 1 1))

let test_two_active_none_progress () =
  let r = scenario ~n:3 ~active:[ 1; 2 ] ~progressing:[] () in
  check_bool "(1,2) violated" false (holds r (lk 1 2));
  check_bool "(1,3) violated" false (holds r (lk 1 3));
  check_bool "(1,1) vacuous" true (holds r (lk 1 1))

let test_solo_progress () =
  let r = scenario ~n:3 ~crashed:[ 2; 3 ] ~active:[ 1 ] ~progressing:[ 1 ] () in
  check_bool "(1,1) holds" true (holds r (lk 1 1));
  check_bool "(3,3) holds (fewer correct than l, all progress)" true
    (holds r (lk 3 3))

let test_solo_no_progress () =
  let r = scenario ~n:3 ~crashed:[ 2; 3 ] ~active:[ 1 ] ~progressing:[] () in
  check_bool "(1,1) violated" false (holds r (lk 1 1))

let test_bad_responses_are_not_progress () =
  (* Everybody gets responses, but they are all Bad: like a TM
     aborting every transaction. *)
  let r = scenario ~n:2 ~active:[ 1; 2 ] ~progressing:[] () in
  check_bool "(1,2) violated despite responses" false (holds r (lk 1 2));
  check_bool "with good = everything it would hold" true
    (Freedom.holds ~good:(fun _ -> true) r (lk 1 2))

let test_explain () =
  let r = scenario ~n:3 ~active:[ 1; 2 ] ~progressing:[ 2 ] () in
  (match Freedom.explain ~good r (lk 2 2) with
  | `Violated missing ->
      check_bool "p1 and p3 failed to progress" true
        (Proc.Set.equal missing (Proc.Set.of_list [ 1; 3 ]))
  | `Holds | `Vacuous -> Alcotest.fail "expected violation");
  check_bool "vacuous above k" true (Freedom.explain ~good r (lk 1 1) = `Vacuous)

(* The paper's incomparability example (Section 5.1): (1,3) and (2,2)
   are incomparable. *)
let test_incomparability_section_5_1 () =
  (* “An execution in which only two processes take steps and only one
     of those two makes progress ensures (1,3)-freedom but does not
     ensure (2,2)-freedom.” *)
  let two_one = scenario ~n:3 ~crashed:[ 3 ] ~active:[ 1; 2 ] ~progressing:[ 1 ] () in
  check_bool "(1,3) holds on two-active-one-progress" true
    (holds two_one (lk 1 3));
  check_bool "(2,2) fails on two-active-one-progress" false
    (holds two_one (lk 2 2));
  (* “An execution in which only three processes take steps and none
     makes progress ensures (2,2)-freedom but not (1,3)-freedom.” *)
  let three_none = scenario ~n:3 ~active:[ 1; 2; 3 ] ~progressing:[] () in
  check_bool "(2,2) vacuous on three-active" true (holds three_none (lk 2 2));
  check_bool "(1,3) fails on three-active" false (holds three_none (lk 1 3));
  check_bool "grid order calls them incomparable" false
    (Freedom.comparable (lk 1 3) (lk 2 2))

(* The strength order. *)

let test_order_basics () =
  check_bool "reflexive" true (Freedom.stronger_equal (lk 2 3) (lk 2 3));
  check_bool "(2,2) stronger than (1,2)" true
    (Freedom.stronger_equal (lk 2 2) (lk 1 2));
  check_bool "(1,2) stronger than (1,1)" true
    (Freedom.stronger_equal (lk 1 2) (lk 1 1));
  check_bool "(1,1) not stronger than (1,2)" false
    (Freedom.stronger_equal (lk 1 1) (lk 1 2));
  check_bool "wait-freedom strongest" true
    (List.for_all
       (Freedom.stronger_equal (Freedom.wait_freedom ~n:4))
       (Freedom.all ~n:4))

let test_all_grid () =
  check_int "grid size n=4 is 10" 10 (List.length (Freedom.all ~n:4));
  check_int "grid size n=1 is 1" 1 (List.length (Freedom.all ~n:1));
  check_bool "all satisfy l <= k" true
    (List.for_all (fun f -> Freedom.l f <= Freedom.k f) (Freedom.all ~n:5))

let test_maximal_minimal () =
  let points = [ lk 1 1; lk 1 2; lk 2 2; lk 1 3 ] in
  let maxes = Freedom.maximal points in
  check_bool "maximal = {(2,2), (1,3)}" true
    (List.length maxes = 2
    && List.exists (Freedom.equal (lk 2 2)) maxes
    && List.exists (Freedom.equal (lk 1 3)) maxes);
  let mins = Freedom.minimal points in
  check_bool "minimal = {(1,1)}" true
    (match mins with [ p ] -> Freedom.equal p (lk 1 1) | _ -> false);
  check_bool "unique on singleton" true
    (Freedom.unique mins = Some (lk 1 1));
  check_bool "unique on pair is None" true (Freedom.unique maxes = None)

(* Semantic soundness of the syntactic order: if a stronger_equal b
   then every scenario satisfying a satisfies b. *)
let prop_order_sound =
  let scenarios =
    (* Enumerate small scenarios: subsets of {1,2,3} active, subsets
       progressing, subsets crashed (disjoint from active). *)
    let subsets = [ []; [ 1 ]; [ 2 ]; [ 1; 2 ]; [ 1; 2; 3 ]; [ 2; 3 ] ] in
    List.concat_map
      (fun active ->
        List.concat_map
          (fun progressing ->
            if List.for_all (fun p -> List.mem p active) progressing then
              [
                scenario ~n:3 ~active ~progressing ();
                scenario ~n:3
                  ~crashed:(List.filter (fun p -> not (List.mem p active)) [ 1; 2; 3 ])
                  ~active ~progressing ();
              ]
            else [])
          subsets)
      subsets
  in
  QCheck2.Test.make ~name:"stronger_equal is semantically sound" ~count:200
    (QCheck2.Gen.pair
       (QCheck2.Gen.oneofl (Freedom.all ~n:3))
       (QCheck2.Gen.oneofl (Freedom.all ~n:3)))
    (fun (a, b) ->
      (not (Freedom.stronger_equal a b))
      || List.for_all (fun r -> (not (holds r a)) || holds r b) scenarios)

(* Live_property wrappers. *)

let test_live_property () =
  let r = scenario ~n:2 ~active:[ 1; 2 ] ~progressing:[ 1 ] () in
  let lock = Live_property.lock_freedom ~good ~n:2 in
  let wait = Live_property.wait_freedom ~good ~n:2 in
  check_bool "lock-freedom holds" true (Live_property.holds lock r);
  check_bool "wait-freedom fails" false (Live_property.holds wait r);
  check_bool "local progress is wait-freedom with good" true
    (Live_property.holds (Live_property.local_progress ~good ~n:2) r = false);
  let both = Live_property.conj ~name:"both" lock wait in
  check_bool "conj" false (Live_property.holds both r);
  check_bool "of_freedom name" true
    (Live_property.name (Live_property.of_freedom ~good (lk 1 2))
    = "(1,2)-freedom")

(* Fairness. *)

let test_fairness () =
  let fair = scenario ~n:2 ~active:[ 1; 2 ] ~progressing:[ 1; 2 ] () in
  check_bool "all active: fair" true (Fairness.is_bounded_fair fair);
  let starving = scenario ~n:3 ~active:[ 1; 2 ] ~progressing:[ 1 ] () in
  check_bool "p3 starved: unfair" false (Fairness.is_bounded_fair starving);
  check_bool "starved set" true
    (Proc.Set.equal (Fairness.starved starving) (Proc.Set.singleton 3));
  let crashed = scenario ~n:3 ~crashed:[ 3 ] ~active:[ 1; 2 ] ~progressing:[ 1 ] () in
  check_bool "crashed process is not starved" true
    (Fairness.is_bounded_fair crashed)

(* Section 6 alternatives. *)

let test_s_freedom () =
  let s12 = Alt.S_freedom.make [ 1; 2 ] in
  let s1 = Alt.S_freedom.make [ 1 ] in
  let s2 = Alt.S_freedom.make [ 2 ] in
  check_bool "cardinalities sorted" true
    (Alt.S_freedom.cardinalities s12 = [ 1; 2 ]);
  check_bool "{1,2} stronger than {1}" true
    (Alt.S_freedom.stronger_equal s12 s1);
  check_bool "{1} not stronger than {2}" false
    (Alt.S_freedom.stronger_equal s1 s2);
  check_bool "singletons incomparable" false (Alt.S_freedom.comparable s1 s2);
  check_int "three singletons for n=3" 3
    (List.length (Alt.S_freedom.singletons ~n:3));
  (* Evaluation: two active correct procs, one progresses. *)
  let r = scenario ~n:3 ~crashed:[ 3 ] ~active:[ 1; 2 ] ~progressing:[ 1 ] () in
  check_bool "{2}-freedom violated" false (Alt.S_freedom.holds ~good r s2);
  check_bool "{1}-freedom vacuous" true (Alt.S_freedom.holds ~good r s1);
  Alcotest.check_raises "empty S rejected"
    (Invalid_argument "S_freedom.make: empty set") (fun () ->
      ignore (Alt.S_freedom.make []))

let test_nx_liveness () =
  let all = Alt.Nx_liveness.all ~n:3 in
  check_int "four properties for n=3" 4 (List.length all);
  check_bool "totally ordered" true
    (List.for_all
       (fun a ->
         List.for_all
           (fun b ->
             Alt.Nx_liveness.stronger_equal a b
             || Alt.Nx_liveness.stronger_equal b a)
           all)
       all);
  let x1 = Alt.Nx_liveness.make ~n:3 ~x:1 in
  let x0 = Alt.Nx_liveness.make ~n:3 ~x:0 in
  check_bool "(3,1) stronger than (3,0)" true
    (Alt.Nx_liveness.stronger_equal x1 x0);
  (* p1 is in the wait-free set: active and correct but no progress
     violates (3,1) and satisfies (3,0) when not solo. *)
  let r = scenario ~n:3 ~active:[ 1; 2 ] ~progressing:[ 2 ] () in
  check_bool "(3,1) violated" false (Alt.Nx_liveness.holds ~good r x1);
  check_bool "(3,0) holds" true (Alt.Nx_liveness.holds ~good r x0);
  (* Solo run without progress violates even (3,0). *)
  let solo = scenario ~n:3 ~crashed:[ 2; 3 ] ~active:[ 1 ] ~progressing:[] () in
  check_bool "(3,0) violated on solo no-progress" false
    (Alt.Nx_liveness.holds ~good solo x0)


(* Lasso certificates. *)

let test_trace_period_units () =
  let period xs = Lasso.trace_period ~equal:Int.equal xs in
  check_bool "perfect period 2" true (period [ 1; 2; 1; 2; 1; 2 ] = Some 2);
  check_bool "constant trace has period 1" true
    (period [ 5; 5; 5; 5 ] = Some 1);
  check_bool "aperiodic" true (period [ 1; 2; 3; 4; 5; 6 ] = None);
  check_bool "period must repeat twice" true (period [ 1; 2; 3; 1 ] = None);
  check_bool "too short" true (period [ 1 ] = None);
  check_bool "empty" true (period [] = None);
  check_bool "smallest period preferred" true
    (period [ 7; 7; 7; 7; 7; 7 ] = Some 1)

let test_lasso_on_lockstep_run () =
  let r =
    Slx_consensus.Consensus_adversary.run_lockstep
      ~factory:(Slx_consensus.Register_consensus.factory ())
      ~max_steps:1200
  in
  (match Lasso.window_period r with
  | Some p -> check_bool "small period" true (p <= 20 && p >= 1)
  | None -> Alcotest.fail "lockstep run must be periodic");
  check_bool "certified violation of (1,2)" true
    (Lasso.certified_violation
       ~good:(fun (_ : Slx_consensus.Consensus_type.response) -> true)
       r
       (Freedom.make ~l:1 ~k:2))

let test_lasso_on_tm_adversary_run () =
  let r =
    Slx_tm.Tm_adversary.run_local_progress
      ~factory:(Slx_tm.I12.factory ~vars:1)
      ~max_steps:1200 ()
  in
  check_bool "TM adversary run is periodic" true
    (Option.is_some (Lasso.window_period r));
  check_bool "certified violation of (2,2)" true
    (Lasso.certified_violation ~good:Slx_tm.Tm_type.good r
       (Freedom.make ~l:2 ~k:2))

let test_no_lasso_on_decided_run () =
  (* A run that decides and then quiesces mid-window is typically not
     periodic over the whole window... but re-invocations make decided
     consensus periodic (propose/decide loops).  Use a one-shot
     workload so the window ends in silence after a non-trivial
     prefix. *)
  let r =
    Slx_sim.Runner.run ~n:2
      ~factory:(Slx_consensus.Cas_consensus.factory ())
      ~driver:
        (Slx_sim.Driver.random ~seed:3
           ~workload:
             (Slx_sim.Driver.n_times 1 (fun p _ ->
                  Slx_consensus.Consensus_type.Propose p))
           ())
      ~max_steps:40 ~window:40 ()
  in
  (* Not asserting None - just that the certificate machinery runs and
     that a finished run is not reported as a violation. *)
  check_bool "no certified violation on a completed run" false
    (Lasso.certified_violation
       ~good:(fun (_ : Slx_consensus.Consensus_type.response) -> true)
       r
       (Freedom.make ~l:1 ~k:2))


(* Section 6 properties evaluated on real runs (not synthetic
   reports): the (n,x)-liveness and S-freedom stories operationally. *)

let test_nx_liveness_on_real_runs () =
  let propose = Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1)) in
  let all_good (_ : Slx_consensus.Consensus_type.response) = true in
  (* (2,0)-liveness (everyone obstruction-free) holds for register
     consensus: the lockstep run has two active processes, so the
     solo clause is vacuous and the wait-free set is empty. *)
  let lockstep =
    Slx_consensus.Consensus_adversary.run_lockstep
      ~factory:(Slx_consensus.Register_consensus.factory ())
      ~max_steps:1000
  in
  let x0 = Alt.Nx_liveness.make ~n:2 ~x:0 in
  let x1 = Alt.Nx_liveness.make ~n:2 ~x:1 in
  check_bool "(2,0)-liveness survives the lockstep run" true
    (Alt.Nx_liveness.holds ~good:all_good lockstep x0);
  check_bool "(2,1)-liveness violated by the lockstep run" false
    (Alt.Nx_liveness.holds ~good:all_good lockstep x1);
  (* And solo runs satisfy (2,0)'s obstruction-free clause. *)
  let solo =
    Runner.run ~n:2
      ~factory:(Slx_consensus.Register_consensus.factory ())
      ~driver:(Driver.with_crashes [ (0, 2) ] (Driver.solo 1 ~workload:propose))
      ~max_steps:300 ()
  in
  check_bool "(2,0)-liveness holds on the solo run" true
    (Alt.Nx_liveness.holds ~good:all_good solo x0)

let test_s_freedom_on_real_runs () =
  let all_good (_ : Slx_consensus.Consensus_type.response) = true in
  (* {1}-freedom (= obstruction-freedom) holds for register consensus:
     vacuous on the two-active lockstep run, satisfied on solo runs;
     {2}-freedom is violated by the lockstep run. *)
  let lockstep =
    Slx_consensus.Consensus_adversary.run_lockstep
      ~factory:(Slx_consensus.Register_consensus.factory ())
      ~max_steps:1000
  in
  let s1 = Alt.S_freedom.make [ 1 ] and s2 = Alt.S_freedom.make [ 2 ] in
  check_bool "{1}-freedom vacuous on the lockstep run" true
    (Alt.S_freedom.holds ~good:all_good lockstep s1);
  check_bool "{2}-freedom violated by the lockstep run" false
    (Alt.S_freedom.holds ~good:all_good lockstep s2)

let suites =
  [
    ( "liveness",
      [
        quick "make validation" test_make_validation;
        quick "aliases" test_aliases;
        quick "two active both progress" test_two_active_both_progress;
        quick "two active one progresses" test_two_active_one_progresses;
        quick "two active none progress" test_two_active_none_progress;
        quick "solo progress" test_solo_progress;
        quick "solo no progress" test_solo_no_progress;
        quick "bad responses are not progress" test_bad_responses_are_not_progress;
        quick "explain" test_explain;
        quick "incomparability (Section 5.1)" test_incomparability_section_5_1;
        quick "order basics" test_order_basics;
        quick "grid enumeration" test_all_grid;
        quick "maximal and minimal" test_maximal_minimal;
        quick "live property wrappers" test_live_property;
        quick "fairness" test_fairness;
        quick "S-freedom" test_s_freedom;
        quick "lasso trace period units" test_trace_period_units;
        quick "lasso on lockstep run" test_lasso_on_lockstep_run;
        quick "lasso on TM adversary run" test_lasso_on_tm_adversary_run;
        quick "no false lasso on decided run" test_no_lasso_on_decided_run;
        quick "(n,x)-liveness on real runs" test_nx_liveness_on_real_runs;
        quick "S-freedom on real runs" test_s_freedom_on_real_runs;
        quick "(n,x)-liveness" test_nx_liveness;
      ]
      @ qcheck [ prop_order_sound ] );
  ]
