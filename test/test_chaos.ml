(* The chaos fuzzer: every implementation in the repository must keep
   its safety property under random scheduling, stalls and crashes. *)

open Slx_history
open Slx_sim
open Support

let propose_own =
  Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1))

let chaos ~seed ~workload = Chaos.driver ~seed ~crash_probability:0.01 ~workload ()

let run ~n ~seed ~factory ~workload ~max_steps =
  Runner.run ~n ~factory ~driver:(chaos ~seed ~workload) ~max_steps ()

let test_chaos_register_consensus () =
  List.iter
    (fun seed ->
      let r =
        run ~n:3 ~seed
          ~factory:(Slx_consensus.Register_consensus.factory ())
          ~workload:propose_own ~max_steps:400
      in
      check_bool
        (Printf.sprintf "safety (seed %d)" seed)
        true
        (Slx_consensus.Consensus_safety.check r.Run_report.history);
      check_bool "well-formed" true
        (History.is_well_formed r.Run_report.history);
      check_bool "a survivor remains" true
        (Proc.is_valid ~n:3 (Chaos.survivor r)))
    [ 1; 2; 3; 4; 5; 6 ]

let test_chaos_cas_consensus () =
  List.iter
    (fun seed ->
      let r =
        run ~n:4 ~seed
          ~factory:(Slx_consensus.Cas_consensus.factory ())
          ~workload:propose_own ~max_steps:300
      in
      check_bool
        (Printf.sprintf "safety (seed %d)" seed)
        true
        (Slx_consensus.Consensus_safety.check r.Run_report.history))
    [ 7; 8; 9; 10 ]

(* The TM chaos runs use the protocol-aware workload via a custom
   driver wrapper: chaos over Tm_workload's invocation choices. *)
let tm_chaos ~seed : _ Driver.t =
  let rng = Random.State.make [| seed |] in
  fun view ->
    let procs = Proc.all ~n:view.Driver.n in
    let alive =
      List.filter (fun p -> view.Driver.status p <> Runtime.Crashed) procs
    in
    if
      List.length procs - List.length alive < view.Driver.n - 1
      && Random.State.float rng 1.0 < 0.01
      && alive <> []
    then Driver.Crash (List.nth alive (Random.State.int rng (List.length alive)))
    else begin
      let eligible p =
        match view.Driver.status p with
        | Runtime.Ready -> Some (Driver.Schedule p)
        | Runtime.Idle ->
            Some (Driver.Invoke (p, Slx_tm.Tm_workload.next_invocation view p))
        | Runtime.Crashed -> None
      in
      let candidates = List.filter_map eligible procs in
      match candidates with
      | [] -> Driver.Stop
      | _ :: _ ->
          List.nth candidates (Random.State.int rng (List.length candidates))
    end

let test_chaos_tms () =
  List.iter
    (fun (name, factory) ->
      List.iter
        (fun seed ->
          let r =
            Runner.run ~n:3 ~factory ~driver:(tm_chaos ~seed) ~max_steps:160 ()
          in
          check_bool
            (Printf.sprintf "%s final opacity (seed %d)" name seed)
            true
            (Slx_tm.Opacity.check_final r.Run_report.history))
        [ 11; 12; 13 ])
    [
      ("I(1,2)", Slx_tm.I12.factory ~vars:2);
      ("AGP", Slx_tm.Agp_tm.factory ~vars:2);
      ("mutual-abort", Slx_tm.Mutual_abort_tm.factory ~vars:2);
      ("TL2", Slx_tm.Tl2_tm.factory ());
    ]

let test_chaos_locks () =
  (* Locks are blocking: a crashed holder may wedge everyone, but
     mutual exclusion must never break. *)
  List.iter
    (fun (name, factory) ->
      List.iter
        (fun seed ->
          let r =
            Runner.run ~n:2 ~factory
              ~driver:
                (Chaos.driver ~seed ~crash_probability:0.01
                   ~workload:(Driver.forever (fun _ -> Slx_objects.Mutex.Acquire))
                   ())
              ~max_steps:150 ()
          in
          (* The crude always-acquire workload misuses the protocol on
             purpose; mutual exclusion must hold regardless of the
             responses. *)
          ignore r;
          let r' =
            Runner.run ~n:2 ~factory
              ~driver:
                (let inner = Slx_objects.Mutex.random_workload ~seed () in
                 Driver.with_crashes [ (40 + seed, 1) ] inner)
              ~max_steps:150 ()
          in
          check_bool
            (Printf.sprintf "%s mutual exclusion (seed %d)" name seed)
            true
            (Slx_objects.Mutex.mutual_exclusion r'.Run_report.history))
        [ 14; 15; 16 ])
    [
      ("tas", Slx_objects.Mutex.tas_factory ());
      ("bakery", Slx_objects.Bakery.factory ());
      ("peterson", Slx_objects.Peterson.factory ());
    ]

let test_chaos_stack_and_queue () =
  let stack_workload =
    Driver.n_times 4 (fun p k ->
        if k mod 2 = 0 then Slx_objects.Stack_type.Push ((p * 10) + k)
        else Slx_objects.Stack_type.Pop)
  in
  let module Stack_lin = Slx_safety.Linearizability.Make (Slx_objects.Stack_type.Self) in
  List.iter
    (fun seed ->
      let r =
        run ~n:3 ~seed
          ~factory:(Slx_objects.Treiber_stack.factory ())
          ~workload:stack_workload ~max_steps:400
      in
      check_bool
        (Printf.sprintf "stack linearizable under chaos (seed %d)" seed)
        true
        (Stack_lin.check r.Run_report.history))
    [ 17; 18; 19 ]

let prop_chaos_never_breaks_consensus_safety =
  QCheck2.Test.make ~name:"chaos never breaks consensus safety" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let r =
        run ~n:3 ~seed
          ~factory:(Slx_consensus.Register_consensus.factory ())
          ~workload:propose_own ~max_steps:250
      in
      Slx_consensus.Consensus_safety.check r.Run_report.history)

let prop_chaos_reproducible =
  QCheck2.Test.make ~name:"chaos runs are reproducible from the seed" ~count:20
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let h () =
        (run ~n:3 ~seed
           ~factory:(Slx_consensus.Cas_consensus.factory ())
           ~workload:propose_own ~max_steps:120)
          .Run_report.history
      in
      History.equal ~inv:( = ) ~res:( = ) (h ()) (h ()))

let suites =
  [
    ( "chaos",
      [
        quick "register consensus" test_chaos_register_consensus;
        quick "cas consensus" test_chaos_cas_consensus;
        quick "TMs" test_chaos_tms;
        quick "locks" test_chaos_locks;
        quick "stack" test_chaos_stack_and_queue;
      ]
      @ qcheck
          [ prop_chaos_never_breaks_consensus_safety; prop_chaos_reproducible ]
    );
  ]
