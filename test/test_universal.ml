(* The universal construction: any deterministic object, linearizable
   by construction, with liveness inherited from the consensus
   building block. *)

open Slx_history
open Slx_sim
open Slx_liveness
open Slx_objects
open Support

module Reg_lin = Slx_safety.Linearizability.Make (Register_type)
module Stack_lin = Slx_safety.Linearizability.Make (Stack_type.Self)

let register_tp : _ Object_type.t = (module Register_type)
let stack_tp : _ Object_type.t = (module Stack_type.Self)

let register_workload : (Register_type.invocation, Register_type.response) Driver.workload =
  Driver.n_times 4 (fun p k ->
      if (p + k) mod 2 = 0 then Register_type.Read
      else Register_type.Write ((10 * p) + k))

let stack_workload : (Stack_type.invocation, Stack_type.response) Driver.workload =
  Driver.n_times 4 (fun p k ->
      if k mod 2 = 0 then Stack_type.Push ((100 * p) + k) else Stack_type.Pop)

let run_universal ~tp ~consensus ~workload ~seed ~n ~max_steps =
  Runner.run ~n
    ~factory:(Universal.factory ~tp ~consensus ())
    ~driver:(Driver.random ~seed ~workload ())
    ~max_steps ()

let test_universal_register_cas () =
  List.iter
    (fun seed ->
      let r =
        run_universal ~tp:register_tp ~consensus:`Cas
          ~workload:register_workload ~seed ~n:3 ~max_steps:400
      in
      check_bool
        (Printf.sprintf "linearizable (seed %d)" seed)
        true
        (Reg_lin.check r.Run_report.history);
      check_bool "all operations complete (lock-free log)" true
        (History.pending_procs r.Run_report.history = Proc.Set.empty))
    [ 1; 2; 3; 4 ]

let test_universal_stack_cas () =
  List.iter
    (fun seed ->
      let r =
        run_universal ~tp:stack_tp ~consensus:`Cas ~workload:stack_workload
          ~seed ~n:2 ~max_steps:400
      in
      check_bool
        (Printf.sprintf "stack linearizable (seed %d)" seed)
        true
        (Stack_lin.check r.Run_report.history))
    [ 5; 6; 7 ]

let test_universal_register_from_registers_solo () =
  (* Obstruction-freedom of the register-consensus log: a solo process
     completes operations. *)
  let r =
    Runner.run ~n:2
      ~factory:(Universal.factory ~tp:register_tp ~consensus:`Registers ())
      ~driver:
        (Driver.with_crashes [ (0, 2) ]
           (Driver.solo 1 ~workload:register_workload))
      ~max_steps:600 ()
  in
  check_int "solo process completes its four ops" 4
    (List.length (History.responses_of r.Run_report.history 1));
  check_bool "linearizable" true (Reg_lin.check r.Run_report.history);
  check_bool "(1,1)-freedom" true
    (Freedom.holds
       ~good:(fun (_ : Register_type.response) -> true)
       r Freedom.obstruction_freedom)

let test_universal_from_registers_lockstep_starves () =
  (* The consensus impossibility lifts to EVERY universal object from
     registers: a lockstep schedule ties the first log slot's
     commit-adopt cascade forever, so neither process ever completes
     an operation - yet linearizability is never violated. *)
  let lockstep : (Register_type.invocation, Register_type.response) Driver.t =
   fun view ->
    let next = if view.Driver.steps 1 <= view.Driver.steps 2 then 1 else 2 in
    match view.Driver.status next with
    | Runtime.Ready -> Driver.Schedule next
    | Runtime.Idle ->
        Driver.Invoke
          (next, if next = 1 then Register_type.Write 1 else Register_type.Write 2)
    | Runtime.Crashed -> Driver.Stop
  in
  let r =
    Runner.run ~n:2
      ~factory:(Universal.factory ~tp:register_tp ~consensus:`Registers ())
      ~driver:lockstep ~max_steps:2000 ()
  in
  check_bool "no operation ever completes" true
    (History.count Event.is_response r.Run_report.history = 0);
  check_bool "fair" true (Fairness.is_bounded_fair r);
  check_bool "linearizable (vacuously safe)" true
    (Reg_lin.check r.Run_report.history);
  check_bool "(1,2)-freedom violated for the universal register" false
    (Freedom.holds
       ~good:(fun (_ : Register_type.response) -> true)
       r (Freedom.make ~l:1 ~k:2))

let test_universal_agreement_across_processes () =
  (* All processes replay the same log: cross-process reads see a
     single coherent register. *)
  let r =
    run_universal ~tp:register_tp ~consensus:`Cas ~workload:register_workload
      ~seed:11 ~n:4 ~max_steps:600
  in
  check_bool "well-formed" true (History.is_well_formed r.Run_report.history);
  check_bool "linearizable with four processes" true
    (Reg_lin.check r.Run_report.history)

let prop_universal_linearizable =
  QCheck2.Test.make ~name:"universal objects are linearizable" ~count:10
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let r =
        run_universal ~tp:stack_tp ~consensus:`Cas ~workload:stack_workload
          ~seed ~n:2 ~max_steps:300
      in
      Stack_lin.check r.Run_report.history)

let suites =
  [
    ( "universal",
      [
        quick "register over CAS consensus" test_universal_register_cas;
        quick "stack over CAS consensus" test_universal_stack_cas;
        quick "register-consensus log, solo" test_universal_register_from_registers_solo;
        quick "register-consensus log, lockstep starves"
          test_universal_from_registers_lockstep_starves;
        quick "agreement across processes" test_universal_agreement_across_processes;
      ]
      @ qcheck [ prop_universal_linearizable ] );
  ]
