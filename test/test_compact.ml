(* The compact-encoding pass's own suite (ISSUE: hot-loop raw-speed
   pass): the hash-consing and bitmask machinery must be invisible —
   every verdict, witness script and lasso certificate byte-identical
   with the compact hot path on or off — and the bitstate mode must be
   honest about being lossy.

   Layers:
   - QCheck: interning preserves structural equality (the soundness
     argument for replacing key components with interned ids), and the
     conflict bitmasks agree with the footprint oracle everywhere,
     spill range included;
   - differential sweeps over the whole audit registry, safety and
     liveness legs, compact keys on vs off (mirroring
     test/test_dpor.ml's dpor-on-vs-off sweeps);
   - bitstate: an undersized table collides, prunes, reports its
     honest collision bound, and never invents a counterexample; the
     bits bounds raise;
   - the incremental shared-state digest always agrees with the
     from-scratch recomputation — including for the deliberately
     mis-declared fixtures, whose physical write-touches are honest
     even when their declarations lie. *)

open Slx_sim
open Slx_core
open Slx_liveness
open Support
module Audit = Slx_analysis.Audit
module Registry = Slx_analysis.Audit_registry

let show_script pp_inv ds =
  String.concat ";"
    (List.map
       (function
         | Driver.Schedule p -> Printf.sprintf "S%d" p
         | Driver.Invoke (p, i) -> Printf.sprintf "I%d(%s)" p (pp_inv i)
         | Driver.Crash p -> Printf.sprintf "C%d" p
         | Driver.Stop -> "stop")
       ds)

(* ------------------------------------------------------------------ *)
(* QCheck: interning preserves equality.                               *)

let qcheck_intern_preserves_equality =
  QCheck2.Test.make ~count:500
    ~name:"Intern.intern: equal ids iff equal values"
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (pair (int_range 0 5) (list_size (int_range 0 3) (int_range 0 5))))
    (fun values ->
      let pool = Intern.create () in
      let ids = List.map (fun v -> (v, Intern.intern pool v)) values in
      List.for_all
        (fun (v, i) ->
          List.for_all (fun (w, j) -> i = j = (v = w)) ids
          && Intern.intern pool v = i)
        ids)

let qcheck_intern_ints_preserves_equality =
  QCheck2.Test.make ~count:500
    ~name:"Intern.Ints.intern: equal ids iff equal arrays"
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (map Array.of_list (list_size (int_range 0 8) (int_range (-3) 3))))
    (fun arrays ->
      let pool = Intern.Ints.create () in
      let ids = List.map (fun a -> (a, Intern.Ints.intern pool a)) arrays in
      List.for_all
        (fun (a, i) ->
          List.for_all (fun (b, j) -> i = j = (a = b)) ids
          && Intern.Ints.intern pool a = i)
        ids)

(* ------------------------------------------------------------------ *)
(* QCheck: the conflict bitmasks agree with the footprint oracle.      *)
(* Object ids range beyond the 0..61 direct-bit window so the spill    *)
(* fallback is exercised too.                                          *)

let accesses_gen =
  QCheck2.Gen.(
    list_size (int_range 0 4)
      (map
         (fun (o, w) -> { Runtime.obj = o; write = w })
         (pair (oneof [ int_range 0 5; int_range 58 70 ]) bool)))

let qcheck_masks_commute_agree =
  QCheck2.Test.make ~count:1000
    ~name:"masks_commute . mask_of_footprint = footprints_commute"
    QCheck2.Gen.(pair accesses_gen accesses_gen)
    (fun (raw_a, raw_b) ->
      let a = Runtime.of_accesses raw_a and b = Runtime.of_accesses raw_b in
      Runtime.masks_commute (Runtime.mask_of_footprint a)
        (Runtime.mask_of_footprint b)
      = Runtime.footprints_commute a b)

let qcheck_wakes_mask_agree =
  QCheck2.Test.make ~count:1000
    ~name:"Dpor.wakes_mask agrees with Dpor.wakes"
    QCheck2.Gen.(pair accesses_gen (option accesses_gen))
    (fun (raw_obs, raw_pending) ->
      let observed = Runtime.of_accesses raw_obs in
      let pending = Option.map Runtime.of_accesses raw_pending in
      Dpor.wakes_mask
        ~observed:(Runtime.mask_of_footprint observed)
        ~pending:(Option.map Runtime.mask_of_footprint pending)
      = Dpor.wakes ~observed ~pending)

(* ------------------------------------------------------------------ *)
(* Safety leg: Explore with compact keys on vs off, over the whole     *)
(* audit registry — identical verdicts, counters and lex-least         *)
(* witness scripts.                                                    *)

let diff_explore_case (Audit.Case c) =
  let depth = min c.Audit.c_depth 5 in
  let max_crashes = min c.Audit.c_max_crashes 1 in
  let run ~compact ~check =
    Explore.explore ~n:c.Audit.c_n ~factory:c.Audit.c_factory
      ~invoke:c.Audit.c_invoke ~depth ~max_crashes ~dpor:true ~compact ~check
      ()
  in
  let stats e = e.Explore.stats in
  let full = run ~compact:false ~check:(fun _ -> true) in
  let comp = run ~compact:true ~check:(fun _ -> true) in
  (match (full.Explore.outcome, comp.Explore.outcome) with
  | Explore.Ok a, Explore.Ok b ->
      check_int (c.Audit.c_name ^ ": identical runs checked") a b
  | _ ->
      Alcotest.failf "%s: always-true check produced a counterexample"
        c.Audit.c_name);
  check_int
    (c.Audit.c_name ^ ": identical steps")
    (stats full).Explore_stats.steps_executed
    (stats comp).Explore_stats.steps_executed;
  check_int
    (c.Audit.c_name ^ ": identical cache hits")
    (stats full).Explore_stats.cache_hits (stats comp).Explore_stats.cache_hits;
  check_bool
    (c.Audit.c_name ^ ": identical history digest")
    true
    ((stats full).Explore_stats.history_digest
    = (stats comp).Explore_stats.history_digest);
  let fullx = run ~compact:false ~check:(fun _ -> false) in
  let compx = run ~compact:true ~check:(fun _ -> false) in
  match (fullx.Explore.witness_script, compx.Explore.witness_script) with
  | Some a, Some b ->
      Alcotest.(check string)
        (c.Audit.c_name ^ ": identical lex-least counterexample script")
        (show_script c.Audit.c_pp_inv a)
        (show_script c.Audit.c_pp_inv b)
  | _ ->
      Alcotest.failf "%s: always-false check produced no counterexample"
        c.Audit.c_name

let test_explore_differential () =
  List.iter diff_explore_case (Registry.all ())

(* ------------------------------------------------------------------ *)
(* Liveness leg: Live_explore with compact keys on vs off.             *)

let diff_live_case (Audit.Case c) =
  let depth = min c.Audit.c_depth 7 in
  let run ~compact =
    Live_explore.search ~n:c.Audit.c_n ~factory:c.Audit.c_factory
      ~invoke:c.Audit.c_invoke
      ~good:(fun _ -> false)
      ~point:(Freedom.make ~l:1 ~k:1) ~depth ~dpor:true ~compact ()
  in
  let full = run ~compact:false in
  let comp = run ~compact:true in
  check_int
    (c.Audit.c_name ^ ": identical live nodes")
    full.Live_explore.stats.Explore_stats.nodes
    comp.Live_explore.stats.Explore_stats.nodes;
  match (full.Live_explore.outcome, comp.Live_explore.outcome) with
  | Live_explore.No_fair_cycle, Live_explore.No_fair_cycle -> ()
  | Live_explore.Lasso a, Live_explore.Lasso b ->
      Alcotest.(check string)
        (c.Audit.c_name ^ ": identical lasso stem")
        (show_script c.Audit.c_pp_inv a.Lasso.c_stem)
        (show_script c.Audit.c_pp_inv b.Lasso.c_stem);
      Alcotest.(check string)
        (c.Audit.c_name ^ ": identical lasso cycle")
        (show_script c.Audit.c_pp_inv a.Lasso.c_cycle)
        (show_script c.Audit.c_pp_inv b.Lasso.c_cycle);
      check_bool
        (c.Audit.c_name ^ ": identical certificate cells")
        true
        (a.Lasso.c_cells = b.Lasso.c_cells)
  | Live_explore.Lasso _, Live_explore.No_fair_cycle ->
      Alcotest.failf "%s: compact keys missed the lasso" c.Audit.c_name
  | Live_explore.No_fair_cycle, Live_explore.Lasso _ ->
      Alcotest.failf "%s: compact keys invented a lasso" c.Audit.c_name

let test_live_differential () = List.iter diff_live_case (Registry.all ())

(* The positive half: Theorem 5.2's own (1,2) lasso at depth 8 must be
   byte-identical with compact keys on or off, under the dpor
   reduction whose key carries sleepers and streaks. *)

let pp_consensus_inv (Slx_consensus.Consensus_type.Propose v) =
  "propose " ^ string_of_int v

let consensus_invoke =
  Explore.workload_invoke
    (Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1)))

let test_register_cert_identity () =
  let run ~compact =
    Live_explore.search ~n:2
      ~factory:(fun () ->
        Slx_consensus.Register_consensus.factory ~max_rounds:8 ())
      ~invoke:consensus_invoke
      ~good:(fun _ -> true)
      ~point:(Freedom.make ~l:1 ~k:2) ~depth:8 ~dpor:true ~compact ()
  in
  let cert name r =
    match r.Live_explore.outcome with
    | Live_explore.Lasso c -> c
    | Live_explore.No_fair_cycle ->
        Alcotest.failf "register (1,2) %s: expected a lasso" name
  in
  let b = cert "structural" (run ~compact:false) in
  let c = cert "compact" (run ~compact:true) in
  Alcotest.(check string)
    "identical stem"
    (show_script pp_consensus_inv b.Lasso.c_stem)
    (show_script pp_consensus_inv c.Lasso.c_stem);
  Alcotest.(check string)
    "identical cycle"
    (show_script pp_consensus_inv b.Lasso.c_cycle)
    (show_script pp_consensus_inv c.Lasso.c_cycle);
  check_bool "identical cells" true (b.Lasso.c_cells = c.Lasso.c_cells)

(* ------------------------------------------------------------------ *)
(* Bitstate: honesty of the lossy mode.                                *)

let one_proposal =
  Explore.workload_invoke
    (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))

let register_explore ?bitstate () =
  Explore.explore ~n:2
    ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
    ~invoke:one_proposal ~depth:8 ?bitstate
    ~check:(fun _ -> true)
    ()

let test_bitstate_undersized_is_honest () =
  (* 2^4 = 16 slots for hundreds of states: the table saturates, false
     hits prune real work, and the stats must say so — positive hit
     count, near-certain reported collision probability — while the
     verdict stays Ok (one-sided: pruning can only lose coverage,
     never invent a violation). *)
  let exact = register_explore () in
  let lossy = register_explore ~bitstate:4 () in
  let runs e =
    match e.Explore.outcome with
    | Explore.Ok r -> r
    | Explore.Counterexample _ ->
        Alcotest.fail "register depth-8 must be safe"
  in
  let st = lossy.Explore.stats in
  check_int "stats record the table exponent" 4 st.Explore_stats.bitstate_bits;
  check_bool "the undersized table collides" true
    (st.Explore_stats.bitstate_hits > 0);
  check_bool "collisions prune runs" true (runs lossy < runs exact);
  let p = Explore_stats.bitstate_collision_probability st in
  check_bool "the reported collision probability is near-certain" true
    (p > 0.5);
  check_bool "occupancy is bounded by the table size" true
    (st.Explore_stats.bitstate_marks <= 16);
  (* The exact run reports no bitstate row at all. *)
  check_int "exact mode records no table"
    0 exact.Explore.stats.Explore_stats.bitstate_bits;
  check_bool "exact mode reports zero collision probability" true
    (Explore_stats.bitstate_collision_probability exact.Explore.stats = 0.0)

let test_bitstate_adequate_agrees () =
  (* A comfortably-sized table on the same instance: the Bloom bound
     is tiny and the verdict agrees with the exact exploration.  (The
     explored run sets still differ by design, collision-free or not:
     the bitstate marks a configuration at entry, so an ancestor
     recurrence on the DFS stack hits, while the exact cache stores
     only completed subtrees — digest identity is deliberately NOT
     claimed for this mode, which is why it is safety-only.) *)
  let exact = register_explore () in
  let big = register_explore ~bitstate:20 () in
  let st = big.Explore.stats in
  check_bool "reported probability is small" true
    (Explore_stats.bitstate_collision_probability st < 0.01);
  (match (exact.Explore.outcome, big.Explore.outcome) with
  | Explore.Ok _, Explore.Ok _ -> ()
  | _ -> Alcotest.fail "both modes must report safe");
  check_bool "an adequate table does not saturate" true
    (st.Explore_stats.bitstate_marks < 1 lsl 20)

let test_bitstate_bits_bounds () =
  List.iter
    (fun bits ->
      match register_explore ~bitstate:bits () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "bitstate %d must be rejected" bits)
    [ 3; 31 ]

(* ------------------------------------------------------------------ *)
(* The incremental shared-state digest agrees with the from-scratch    *)
(* recomputation after every decision — for an honest implementation   *)
(* and for the mis-declared fixtures (whose physical write-touches are *)
(* still attached to the owning cell).                                 *)

let test_incremental_digest_matches_full () =
  let c =
    Runner.Cursor.create ~n:2
      ~factory:(Slx_consensus.Register_consensus.factory ())
      ()
  in
  let check_step i d =
    Runner.Cursor.apply c d;
    check_bool
      (Printf.sprintf "register consensus: digests agree after decision %d" i)
      true
      (Runner.Cursor.shared_digest c = Runner.Cursor.shared_digest_full c)
  in
  List.iteri check_step
    [
      Driver.Invoke (1, Slx_consensus.Consensus_type.Propose 0);
      Driver.Schedule 1;
      Driver.Invoke (2, Slx_consensus.Consensus_type.Propose 1);
      Driver.Schedule 2;
      Driver.Schedule 1;
      Driver.Schedule 2;
      Driver.Schedule 1;
    ]

let test_incremental_digest_matches_full_on_fixture () =
  let c =
    Runner.Cursor.create ~n:2 ~factory:Slx_analysis.Fixtures.leaky_factory ()
  in
  let check_step i d =
    Runner.Cursor.apply c d;
    check_bool
      (Printf.sprintf "leaky fixture: digests agree after decision %d" i)
      true
      (Runner.Cursor.shared_digest c = Runner.Cursor.shared_digest_full c)
  in
  List.iteri check_step
    [
      Driver.Invoke (1, Slx_analysis.Fixtures.Poke 7);
      Driver.Schedule 1;
      Driver.Invoke (2, Slx_analysis.Fixtures.Peek);
      Driver.Schedule 2;
    ]

let suites =
  [
    ( "compact",
      [
        quick "explore differential over the audit registry"
          test_explore_differential;
        quick "live-explore differential over the audit registry"
          test_live_differential;
        quick "register (1,2) certificate is identical under compact keys"
          test_register_cert_identity;
        quick "an undersized bitstate table is honest about collisions"
          test_bitstate_undersized_is_honest;
        quick "an adequate bitstate table agrees with the exact search"
          test_bitstate_adequate_agrees;
        quick "bitstate bits outside 4..30 are rejected"
          test_bitstate_bits_bounds;
        quick "incremental shared digest = full recomputation"
          test_incremental_digest_matches_full;
        quick "incremental shared digest survives mis-declared fixtures"
          test_incremental_digest_matches_full_on_fixture;
      ]
      @ qcheck
          [
            qcheck_intern_preserves_equality;
            qcheck_intern_ints_preserves_equality;
            qcheck_masks_commute_agree;
            qcheck_wakes_mask_agree;
          ] );
  ]
