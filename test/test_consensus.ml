open Slx_history
open Slx_sim
open Slx_liveness
open Slx_consensus
open Support

let propose_own : (Consensus_type.invocation, Consensus_type.response) Driver.workload =
  (* Each process keeps proposing a value derived from its identity, so
     two processes always propose distinct values. *)
  Driver.forever (fun p -> Consensus_type.Propose (p - 1))

let good (_ : Consensus_type.response) = true

let lk l k = Freedom.make ~l ~k

let safety_holds r = Consensus_safety.check r.Run_report.history

(* ------------------------------------------------------------------ *)
(* Register-based consensus (commit-adopt cascade).                    *)

let test_register_solo_decides_own_value () =
  let r =
    Runner.run ~n:2
      ~factory:(Register_consensus.factory ())
      ~driver:(Driver.with_crashes [ (0, 2) ] (Driver.solo 1 ~workload:propose_own))
      ~max_steps:200 ()
  in
  (match Consensus_adversary.decisions r.Run_report.history with
  | (p, v) :: _ ->
      check_int "decision by the solo process" 1 p;
      check_int "solo process decides its own value" 0 v
  | [] -> Alcotest.fail "solo process did not decide");
  check_bool "safety" true (safety_holds r);
  check_bool "bounded-fair" true (Fairness.is_bounded_fair r);
  check_bool "(1,1)-freedom holds" true (Freedom.holds ~good r (lk 1 1))

let test_register_consensus_safety_under_contention () =
  (* Whatever the schedule, agreement and validity must hold. *)
  List.iter
    (fun seed ->
      let r =
        Runner.run ~n:3
          ~factory:(Register_consensus.factory ())
          ~driver:(Driver.random ~seed ~workload:propose_own ())
          ~max_steps:600 ()
      in
      check_bool
        (Printf.sprintf "safety under random schedule (seed %d)" seed)
        true (safety_holds r))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_register_consensus_decides_under_random_schedules () =
  (* Random schedules are not adversarial: decisions happen almost
     always.  (Not a liveness guarantee — just evidence the
     implementation is not vacuously undecided.) *)
  let decided =
    List.filter
      (fun seed ->
        let r =
          Runner.run ~n:2
            ~factory:(Register_consensus.factory ())
            ~driver:(Driver.random ~seed ~workload:propose_own ())
            ~max_steps:800 ()
        in
        Consensus_adversary.decisions r.Run_report.history <> [])
      [ 11; 12; 13; 14; 15; 16; 17; 18 ]
  in
  check_bool "most random schedules decide" true (List.length decided >= 6)

(* ------------------------------------------------------------------ *)
(* The lockstep adversary (Theorem 5.2, negative half).                *)

let test_lockstep_prevents_decision () =
  let r =
    Consensus_adversary.run_lockstep
      ~factory:(Register_consensus.factory ())
      ~max_steps:2000
  in
  check_bool "no decision ever" true
    (Consensus_adversary.decisions r.Run_report.history = []);
  check_bool "safety still holds" true (safety_holds r);
  check_bool "run is bounded-fair" true (Fairness.is_bounded_fair r);
  check_bool "both processes active" true
    (Proc.Set.equal (Run_report.active_procs r) (Proc.Set.of_list [ 1; 2 ]))

let test_lockstep_violates_lk_for_k_ge_2 () =
  let r =
    Consensus_adversary.run_lockstep
      ~factory:(Register_consensus.factory ())
      ~max_steps:2000
  in
  check_bool "(1,2) violated" false (Freedom.holds ~good r (lk 1 2));
  check_bool "(2,2) violated" false (Freedom.holds ~good r (lk 2 2));
  check_bool "(1,1) vacuous" true (Freedom.holds ~good r (lk 1 1))

let test_lockstep_loses_to_cas () =
  (* Against CAS-based consensus the same schedule cannot prevent
     decisions: wait-freedom is implementable (Herlihy). *)
  let r =
    Consensus_adversary.run_lockstep
      ~factory:(Cas_consensus.factory ())
      ~max_steps:400
  in
  check_bool "decisions happen" true
    (Consensus_adversary.decisions r.Run_report.history <> []);
  check_bool "safety" true (safety_holds r);
  check_bool "wait-freedom holds" true
    (Freedom.holds ~good r (Freedom.wait_freedom ~n:2))

(* ------------------------------------------------------------------ *)
(* The tie-maintaining search adversary.                               *)

let test_tie_attack_defeats_register_consensus () =
  match
    Consensus_adversary.tie_attack
      ~factory:(Register_consensus.factory ())
      ~steps:60 ()
  with
  | Consensus_adversary.Defeated r ->
      check_bool "no decision in the defeated run" true
        (Consensus_adversary.decisions r.Run_report.history = []);
      check_bool "safety holds on the defeated run" true (safety_holds r)
  | Consensus_adversary.Lost _ ->
      Alcotest.fail "tie attack should defeat register consensus"

let test_tie_attack_loses_to_cas () =
  match
    Consensus_adversary.tie_attack ~factory:(Cas_consensus.factory ()) ~steps:60 ()
  with
  | Consensus_adversary.Defeated _ ->
      Alcotest.fail "tie attack cannot defeat CAS consensus"
  | Consensus_adversary.Lost r ->
      check_bool "a decision occurred" true
        (Consensus_adversary.decisions r.Run_report.history <> [])

(* ------------------------------------------------------------------ *)
(* CAS consensus: the Lmax-implementable foil.                         *)

let test_cas_consensus_wait_free_and_safe () =
  List.iter
    (fun seed ->
      let r =
        Runner.run ~n:4
          ~factory:(Cas_consensus.factory ())
          ~driver:(Driver.random ~seed ~workload:propose_own ())
          ~max_steps:300 ()
      in
      check_bool "safety" true (safety_holds r);
      check_bool "fair" true (Fairness.is_bounded_fair r);
      check_bool "wait-freedom" true
        (Freedom.holds ~good r (Freedom.wait_freedom ~n:4)))
    [ 21; 22; 23 ]

(* ------------------------------------------------------------------ *)
(* The unsafe foil.                                                    *)

let test_selfish_violates_agreement () =
  let r =
    Runner.run ~n:2
      ~factory:(Selfish_consensus.factory ())
      ~driver:(Driver.round_robin ~workload:propose_own ())
      ~max_steps:20 ()
  in
  check_bool "agreement violated" false (safety_holds r);
  check_bool "wait-free though" true
    (Freedom.holds ~good r (Freedom.wait_freedom ~n:2))

(* ------------------------------------------------------------------ *)
(* Consensus safety checker unit tests.                                *)

let cinv p v = Event.Invocation (p, Consensus_type.Propose v)
let cres p v = Event.Response (p, Consensus_type.Decided v)

let test_safety_checker_units () =
  let ok_h = History.of_list [ cinv 1 0; cinv 2 1; cres 1 0; cres 2 0 ] in
  check_bool "agreeing history accepted" true (Consensus_safety.check ok_h);
  let disagree = History.of_list [ cinv 1 0; cinv 2 1; cres 1 0; cres 2 1 ] in
  check_bool "agreement violation rejected" false (Consensus_safety.check disagree);
  check_bool "agreement alone false" false (Consensus_safety.agreement disagree);
  let invented = History.of_list [ cinv 1 0; cres 1 7 ] in
  check_bool "validity violation rejected" false (Consensus_safety.check invented);
  check_bool "validity alone false" false (Consensus_safety.validity invented);
  let early = History.of_list [ cres 1 0 ] in
  check_bool "ill-formed rejected" false (Consensus_safety.check early);
  (* Deciding a value proposed later is a validity violation even
     though the value appears in the history. *)
  let time_travel = History.of_list [ cinv 1 0; cres 1 5; cinv 2 5 ] in
  check_bool "decision before proposal rejected" false
    (Consensus_safety.validity time_travel)

let test_safety_weaker_than_linearizability () =
  (* Late proposer deciding the first value twice: linearizable implies
     agreement-and-validity, and here both hold. *)
  let h = History.of_list [ cinv 1 0; cres 1 0; cinv 2 1; cres 2 0 ] in
  check_bool "lin holds" true
    (Slx_safety.Property.holds Consensus_safety.linearizability h);
  check_bool "A&V holds" true (Consensus_safety.check h);
  (* Two sequential proposals both deciding the later value: satisfies
     agreement and validity but is NOT linearizable — A&V is strictly
     weaker. *)
  let h' = History.of_list [ cinv 1 0; cres 1 1; cinv 2 1; cres 2 1 ] in
  check_bool "A&V holds on non-linearizable history" false
    (Consensus_safety.validity h');
  (* validity fails here because 1 was not yet proposed; build the
     intended example with proposals first. *)
  let h'' =
    History.of_list [ cinv 2 1; cres 2 1; cinv 1 0; cres 1 1 ]
  in
  check_bool "A&V accepts" true (Consensus_safety.check h'');
  check_bool "linearizability also accepts this one" true
    (Slx_safety.Property.holds Consensus_safety.linearizability h'')

(* ------------------------------------------------------------------ *)
(* Adversary sets of Corollary 4.5.                                    *)

let test_adversary_sets () =
  let f1 = Consensus_adversary_sets.f1 ~v:0 ~v':1 in
  let f2 = Consensus_adversary_sets.f2 ~v:0 ~v':1 in
  check_int "F1 has six histories" 6 (List.length f1);
  check_int "F2 has six histories" 6 (List.length f2);
  check_bool "F1 and F2 disjoint" true (Consensus_adversary_sets.disjoint f1 f2);
  check_bool "F1 not disjoint from itself" false
    (Consensus_adversary_sets.disjoint f1 f1);
  check_bool "F1 within the safety property" true
    (Consensus_adversary_sets.all_safe f1);
  check_bool "F2 within the safety property" true
    (Consensus_adversary_sets.all_safe f2);
  check_bool "F1 histories leave someone undecided" true
    (Consensus_adversary_sets.all_incomplete f1);
  check_bool "F2 histories leave someone undecided" true
    (Consensus_adversary_sets.all_incomplete f2);
  Alcotest.check_raises "equal values rejected"
    (Invalid_argument "Consensus_adversary_sets.f1: v = v'") (fun () ->
      ignore (Consensus_adversary_sets.f1 ~v:3 ~v':3))

(* Property test: register consensus is safe on arbitrary random
   schedules with crashes. *)
let prop_register_consensus_always_safe =
  QCheck2.Test.make ~name:"register consensus safe under random schedules"
    ~count:25
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 3))
    (fun (seed, crash_at) ->
      let driver =
        Driver.with_crashes
          [ (10 + crash_at, 2) ]
          (Driver.random ~seed ~workload:propose_own ())
      in
      let r =
        Runner.run ~n:3
          ~factory:(Register_consensus.factory ())
          ~driver ~max_steps:400 ()
      in
      safety_holds r)


(* ------------------------------------------------------------------ *)
(* Consensus from a queue (consensus number 2).                        *)

let one_proposal =
  Slx_core.Explore.workload_invoke
    (Driver.n_times 1 (fun p _ -> Consensus_type.Propose (p - 1)))

let test_queue_consensus_two_procs_exhaustive () =
  match
    Slx_core.Explore.forall_schedules ~n:2
      ~factory:(fun () -> Queue_consensus.factory ())
      ~invoke:one_proposal ~depth:10 ~max_crashes:1
      ~check:(fun r ->
        Consensus_safety.check r.Run_report.history)
      ()
  with
  | Slx_core.Explore.Ok runs ->
      check_bool "safe on every 2-process schedule" true (runs > 10)
  | Slx_core.Explore.Counterexample _ ->
      Alcotest.fail "queue consensus must be safe for two processes"

let test_queue_consensus_two_procs_wait_free () =
  (* Every schedule also completes both operations: wait-freedom. *)
  match
    Slx_core.Explore.forall_schedules ~n:2
      ~factory:(fun () -> Queue_consensus.factory ())
      ~invoke:one_proposal ~depth:10
      ~check:(fun r ->
        History.count Event.is_response r.Run_report.history = 2)
      ()
  with
  | Slx_core.Explore.Ok _ -> ()
  | Slx_core.Explore.Counterexample _ ->
      Alcotest.fail "queue consensus must be wait-free for two processes"

let test_queue_consensus_breaks_at_three () =
  (* The consensus-number-2 boundary: the explorer finds an agreement
     violation with three processes. *)
  match
    Slx_core.Explore.forall_schedules ~n:3
      ~factory:(fun () -> Queue_consensus.factory ())
      ~invoke:one_proposal ~depth:9
      ~check:(fun r ->
        Consensus_safety.check r.Run_report.history)
      ()
  with
  | Slx_core.Explore.Ok _ ->
      Alcotest.fail "the naive 3-process extension must disagree somewhere"
  | Slx_core.Explore.Counterexample r ->
      check_bool "the counterexample is a genuine violation" false
        (Consensus_safety.check r.Run_report.history)

let test_queue_consensus_lockstep_immune () =
  (* Unlike register consensus, the queue protocol is wait-free: the
     strict alternation that ties commit-adopt forever cannot prevent
     its decisions.  (The object is one-shot, so the schedule issues
     exactly one proposal per process.) *)
  let r =
    Runner.run ~n:2 ~factory:(Queue_consensus.factory ())
      ~driver:
        (Driver.round_robin
           ~workload:(Driver.n_times 1 (fun p _ -> Consensus_type.Propose (p - 1)))
           ())
      ~max_steps:50 ()
  in
  check_int "both decide under strict alternation" 2
    (List.length (Consensus_adversary.decisions r.Run_report.history));
  check_bool "safe" true (safety_holds r)

let suites =
  [
    ( "consensus",
      [
        quick "solo decides own value" test_register_solo_decides_own_value;
        quick "safety under contention" test_register_consensus_safety_under_contention;
        quick "decides under random schedules"
          test_register_consensus_decides_under_random_schedules;
        quick "lockstep prevents decision" test_lockstep_prevents_decision;
        quick "lockstep violates (l,k) for k>=2" test_lockstep_violates_lk_for_k_ge_2;
        quick "lockstep loses to CAS" test_lockstep_loses_to_cas;
        quick "tie attack defeats register consensus"
          test_tie_attack_defeats_register_consensus;
        quick "tie attack loses to CAS" test_tie_attack_loses_to_cas;
        quick "CAS consensus wait-free and safe" test_cas_consensus_wait_free_and_safe;
        quick "selfish foil violates agreement" test_selfish_violates_agreement;
        quick "safety checker units" test_safety_checker_units;
        quick "A&V weaker than linearizability" test_safety_weaker_than_linearizability;
        quick "adversary sets F1/F2" test_adversary_sets;
        quick "queue consensus: 2 procs exhaustive" test_queue_consensus_two_procs_exhaustive;
        quick "queue consensus: 2 procs wait-free" test_queue_consensus_two_procs_wait_free;
        quick "queue consensus breaks at 3" test_queue_consensus_breaks_at_three;
        quick "queue consensus lockstep-immune" test_queue_consensus_lockstep_immune;
      ]
      @ qcheck [ prop_register_consensus_always_safe ] );
  ]
