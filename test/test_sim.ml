open Slx_history
open Slx_sim
open Slx_base_objects
open Support

(* A trivial shared counter object: each operation is one atomic
   fetch-and-add. *)
type cinv = Incr
type cres = Got of int

let counter_factory () : (cinv, cres) Runner.factory =
 fun ~n:_ ->
  let c = Fetch_and_add.make 0 in
  fun ~proc:_ Incr -> Got (Fetch_and_add.fetch_and_add c 1)

(* An object whose operation takes [k] register writes. *)
let slow_factory k : (cinv, cres) Runner.factory =
 fun ~n:_ ->
  let r = Register.make 0 in
  fun ~proc:_ Incr ->
    for i = 1 to k do
      Register.write r i
    done;
    Got k

(* An operation that never finishes. *)
let spinner_factory () : (cinv, cres) Runner.factory =
 fun ~n:_ ->
  let r = Register.make 0 in
  fun ~proc:_ Incr ->
    let rec spin () =
      let _ = Register.read r in
      spin ()
    in
    spin ()

let workload : (cinv, cres) Driver.workload = Driver.forever (fun _ -> Incr)

let run_counter ~n ~max_steps driver =
  Runner.run ~n ~factory:(counter_factory ()) ~driver ~max_steps ()

let test_round_robin_completes_ops () =
  let r = run_counter ~n:2 ~max_steps:20 (Driver.round_robin ~workload ()) in
  let responses p = List.length (History.responses_of r.Run_report.history p) in
  (* 20 ticks, alternating invoke/step pairs: each op costs one Invoke
     tick plus one Schedule tick; both processes complete ops. *)
  check_bool "p1 got responses" true (responses 1 > 0);
  check_bool "p2 got responses" true (responses 2 > 0);
  check_bool "history well-formed" true
    (History.is_well_formed r.Run_report.history)

let test_counter_values_unique () =
  let r = run_counter ~n:3 ~max_steps:60 (Driver.round_robin ~workload ()) in
  let values =
    List.concat_map
      (fun p ->
        List.map (fun (Got v) -> v) (History.responses_of r.Run_report.history p))
      (Proc.all ~n:3)
  in
  let sorted = List.sort_uniq Int.compare values in
  check_int "all fetch-and-add results distinct" (List.length values)
    (List.length sorted)

let test_atomic_step_counting () =
  (* One op of slow_factory 5 = 5 atomic steps.  Solo driver: tick 0
     invokes, ticks 1-5 grant. *)
  let r =
    Runner.run ~n:1 ~factory:(slow_factory 5)
      ~driver:(Driver.solo 1 ~workload:(Driver.n_times 1 (fun _ _ -> Incr)))
      ~max_steps:100 ()
  in
  check_int "five grants" 5 (Run_report.steps_total r 1);
  check_int "one invocation + one response" 2
    (History.length r.Run_report.history);
  check_bool "stopped quiescent" true (r.Run_report.stopped = `Quiescent)

let test_zero_step_operation () =
  (* An operation making no atomic step completes at invocation time. *)
  let factory : (cinv, cres) Runner.factory =
   fun ~n:_ ~proc:_ Incr -> Got 42
  in
  let r =
    Runner.run ~n:1 ~factory
      ~driver:(Driver.solo 1 ~workload:(Driver.n_times 1 (fun _ _ -> Incr)))
      ~max_steps:10 ()
  in
  check_int "no grants" 0 (Run_report.steps_total r 1);
  check_bool "response recorded" true
    (History.responses_of r.Run_report.history 1 = [ Got 42 ])

let test_spinner_never_responds () =
  let r =
    Runner.run ~n:1 ~factory:(spinner_factory ())
      ~driver:(Driver.solo 1 ~workload)
      ~max_steps:50 ()
  in
  check_bool "no response" true
    (History.responses_of r.Run_report.history 1 = []);
  check_bool "budget exhausted" true (r.Run_report.stopped = `Max_steps);
  check_int "49 grants after 1 invoke tick" 49 (Run_report.steps_total r 1)

let test_crash_stops_process () =
  let driver =
    Driver.with_crashes [ (6, 1) ] (Driver.round_robin ~workload ())
  in
  let r =
    Runner.run ~n:2 ~factory:(spinner_factory ()) ~driver ~max_steps:40 ()
  in
  check_bool "p1 crashed" true (Proc.Set.mem 1 r.Run_report.crashed);
  check_bool "crash recorded in history" true
    (Proc.Set.mem 1 (History.crashed r.Run_report.history));
  let grants_after_crash =
    List.filter (fun (t, p) -> p = 1 && t > 6) r.Run_report.grants
  in
  check_int "no grants to p1 after crash" 0 (List.length grants_after_crash)

let test_window_accounting () =
  let r = run_counter ~n:2 ~max_steps:40 (Driver.round_robin ~workload ()) in
  check_int "default window is half" 20 r.Run_report.window;
  check_int "window start" 20 (Run_report.window_start r);
  check_bool "both active in window" true
    (Proc.Set.equal (Run_report.active_procs r) (Proc.Set.of_list [ 1; 2 ]));
  check_bool "progress in window" true
    (Run_report.makes_progress ~good:(fun _ -> true) r 1)

let test_solo_driver_restricts () =
  let r = run_counter ~n:3 ~max_steps:30 (Driver.solo 2 ~workload) in
  check_int "p1 took no steps" 0 (Run_report.steps_total r 1);
  check_int "p3 took no steps" 0 (Run_report.steps_total r 3);
  check_bool "p2 made progress" true
    (History.responses_of r.Run_report.history 2 <> [])

let test_random_driver_reproducible () =
  let run seed =
    (run_counter ~n:3 ~max_steps:50
       (Driver.random ~seed ~workload ()))
      .Run_report.history
  in
  check_bool "same seed, same history" true
    (History.equal ~inv:( = ) ~res:( = ) (run 7) (run 7));
  (* Different seeds almost surely differ on 50 ticks. *)
  check_bool "different seed, different history" false
    (History.equal ~inv:( = ) ~res:( = ) (run 7) (run 8))

let test_script_driver () =
  let script =
    [
      Driver.Invoke (1, Incr);
      Driver.Schedule 1;
      Driver.Invoke (2, Incr);
      Driver.Schedule 2;
    ]
  in
  let r =
    Runner.run ~n:2 ~factory:(counter_factory ())
      ~driver:(Driver.of_script script) ~max_steps:100 ()
  in
  check_int "script consumed" 4 r.Run_report.total_time;
  check_int "two responses" 2
    (History.count Slx_history.Event.is_response r.Run_report.history)

let test_invalid_schedule_rejected () =
  let driver = Driver.of_script [ Driver.Schedule 1 ] in
  Alcotest.check_raises "scheduling an idle process raises"
    (Invalid_argument "Runtime.grant: process not ready") (fun () ->
      ignore
        (Runner.run ~n:1 ~factory:(counter_factory ()) ~driver ~max_steps:5 ()))

let test_stop_after () =
  let driver = Driver.stop_after 10 (Driver.round_robin ~workload ()) in
  let r = run_counter ~n:2 ~max_steps:100 driver in
  check_int "stopped at 10" 10 r.Run_report.total_time

let test_n_times_workload () =
  let workload = Driver.n_times 3 (fun _ _ -> Incr) in
  let r = run_counter ~n:1 ~max_steps:100 (Driver.round_robin ~workload ()) in
  check_int "exactly three invocations" 3
    (History.count Slx_history.Event.is_invocation r.Run_report.history);
  check_bool "quiescent at end" true (r.Run_report.stopped = `Quiescent)

(* Base objects semantics, via solo deterministic runs. *)

let run_solo_algorithm algorithm =
  (* Run [algorithm] as a single operation of a 1-process system and
     return its response. *)
  let factory : (cinv, cres) Runner.factory =
   fun ~n:_ ~proc:_ Incr -> Got (algorithm ())
  in
  let r =
    Runner.run ~n:1 ~factory
      ~driver:(Driver.solo 1 ~workload:(Driver.n_times 1 (fun _ _ -> Incr)))
      ~max_steps:10_000 ()
  in
  match History.responses_of r.Run_report.history 1 with
  | [ Got v ] -> v
  | _ -> Alcotest.fail "algorithm did not complete"

let test_register_semantics () =
  let v =
    run_solo_algorithm (fun () ->
        let r = Register.make 10 in
        Register.write r 42;
        Register.read r)
  in
  check_int "register read-after-write" 42 v

let test_cas_semantics () =
  let v =
    run_solo_algorithm (fun () ->
        let c = Cas.make 0 in
        let ok1 = Cas.compare_and_swap c ~expected:0 ~desired:5 in
        let ok2 = Cas.compare_and_swap c ~expected:0 ~desired:9 in
        let final = Cas.read c in
        if ok1 && not ok2 then final else -1)
  in
  check_int "cas succeeds once" 5 v

let test_tas_semantics () =
  let v =
    run_solo_algorithm (fun () ->
        let t = Test_and_set.make () in
        let first = Test_and_set.test_and_set t in
        let second = Test_and_set.test_and_set t in
        if first && not second && Test_and_set.read t then 1 else 0)
  in
  check_int "test-and-set wins once" 1 v

let test_faa_semantics () =
  let v =
    run_solo_algorithm (fun () ->
        let c = Fetch_and_add.make 100 in
        let old = Fetch_and_add.fetch_and_add c 5 in
        old + Fetch_and_add.read c)
  in
  check_int "fetch-and-add old + new" 205 v

let test_snapshot_semantics () =
  let v =
    run_solo_algorithm (fun () ->
        let s = Snapshot.make ~n:3 0 in
        Snapshot.update s 1 10;
        Snapshot.update s 3 30;
        let a = Snapshot.scan s in
        a.(0) + a.(1) + a.(2))
  in
  check_int "snapshot scan" 40 v


(* Runtime cell edge cases. *)

let test_runtime_cell_lifecycle () =
  let open Slx_sim.Runtime in
  let cell = make_cell () in
  check_bool "fresh cell is idle" true (status cell = Idle);
  Alcotest.check_raises "grant on idle raises"
    (Invalid_argument "Runtime.grant: process not ready") (fun () ->
      grant cell);
  (* Spawn a computation with two atomic steps. *)
  let trace = ref [] in
  spawn cell (fun () ->
      trace := 1 :: !trace;
      Slx_sim.Runtime.atomic (fun () -> trace := 2 :: !trace);
      Slx_sim.Runtime.atomic (fun () -> trace := 3 :: !trace);
      trace := 4 :: !trace);
  check_bool "suspended at first atomic" true (status cell = Ready);
  check_bool "ran up to the first atomic" true (!trace = [ 1 ]);
  Alcotest.check_raises "spawn on ready raises"
    (Invalid_argument "Runtime.spawn: process not idle") (fun () ->
      spawn cell (fun () -> ()));
  grant cell;
  check_bool "first atomic executed" true (!trace = [ 2; 1 ]);
  grant cell;
  check_bool "computation finished" true (!trace = [ 4; 3; 2; 1 ]);
  check_bool "idle after completion" true (status cell = Idle)

let test_runtime_crash_unwinds () =
  let open Slx_sim.Runtime in
  let cell = make_cell () in
  let cleaned = ref false in
  spawn cell (fun () ->
      Fun.protect
        ~finally:(fun () -> cleaned := true)
        (fun () ->
          Slx_sim.Runtime.atomic (fun () -> ());
          Slx_sim.Runtime.atomic (fun () -> ())));
  crash cell;
  check_bool "crashed" true (status cell = Crashed);
  check_bool "stack unwound (finally ran)" true !cleaned;
  (* Idempotent. *)
  crash cell;
  check_bool "still crashed" true (status cell = Crashed)

let test_runtime_crash_idle () =
  let open Slx_sim.Runtime in
  let cell = make_cell () in
  crash cell;
  check_bool "idle cell crashes directly" true (status cell = Crashed);
  Alcotest.check_raises "spawn on crashed raises"
    (Invalid_argument "Runtime.spawn: process not idle") (fun () ->
      spawn cell (fun () -> ()))

let test_atomic_outside_runner () =
  check_bool "atomic outside a fiber is unhandled" true
    (match Slx_sim.Runtime.atomic (fun () -> 1) with
    | _ -> false
    | exception Effect.Unhandled _ -> true)

let suites =
  [
    ( "sim",
      [
        quick "round robin completes ops" test_round_robin_completes_ops;
        quick "counter values unique" test_counter_values_unique;
        quick "atomic step counting" test_atomic_step_counting;
        quick "zero-step operation" test_zero_step_operation;
        quick "spinner never responds" test_spinner_never_responds;
        quick "crash stops process" test_crash_stops_process;
        quick "window accounting" test_window_accounting;
        quick "solo driver restricts" test_solo_driver_restricts;
        quick "random driver reproducible" test_random_driver_reproducible;
        quick "script driver" test_script_driver;
        quick "invalid schedule rejected" test_invalid_schedule_rejected;
        quick "stop_after" test_stop_after;
        quick "n_times workload" test_n_times_workload;
        quick "runtime cell lifecycle" test_runtime_cell_lifecycle;
        quick "runtime crash unwinds" test_runtime_crash_unwinds;
        quick "runtime crash idle" test_runtime_crash_idle;
        quick "atomic outside runner" test_atomic_outside_runner;
      ] );
    ( "base-objects",
      [
        quick "register" test_register_semantics;
        quick "cas" test_cas_semantics;
        quick "test-and-set" test_tas_semantics;
        quick "fetch-and-add" test_faa_semantics;
        quick "snapshot" test_snapshot_semantics;
      ] );
  ]
