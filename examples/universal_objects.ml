(* The universal construction: build ANY deterministic shared object
   from consensus, and watch the paper's consensus trade-off propagate
   to it.

   Run with:  dune exec examples/universal_objects.exe *)

open Slx_history
open Slx_sim
open Slx_liveness
open Slx_objects

module Stack_lin = Slx_safety.Linearizability.Make (Stack_type.Self)

let stack_tp : _ Object_type.t = (module Stack_type.Self)

let stack_workload =
  Driver.n_times 3 (fun p k ->
      if k mod 2 = 0 then Stack_type.Push ((10 * p) + k) else Stack_type.Pop)

let () =
  (* 1. A wait-free-log stack from CAS consensus: linearizable under
     any schedule. *)
  let r =
    Runner.run ~n:3
      ~factory:(Universal.factory ~tp:stack_tp ~consensus:`Cas ())
      ~driver:(Driver.random ~seed:21 ~workload:stack_workload ())
      ~max_steps:400 ()
  in
  Format.printf "== universal stack over CAS consensus ==@.";
  Format.printf "history: %a@."
    (History.pp ~pp_inv:Stack_type.pp_invocation ~pp_res:Stack_type.pp_response)
    (History.prefix r.Run_report.history
       (min 12 (History.length r.Run_report.history)));
  Format.printf "linearizable: %b   all ops complete: %b@."
    (Stack_lin.check r.Run_report.history)
    (History.pending_procs r.Run_report.history = Proc.Set.empty);

  (* 2. The same stack over register consensus: a solo process is
     fine... *)
  let solo =
    Runner.run ~n:2
      ~factory:(Universal.factory ~tp:stack_tp ~consensus:`Registers ())
      ~driver:
        (Driver.with_crashes [ (0, 2) ] (Driver.solo 1 ~workload:stack_workload))
      ~max_steps:600 ()
  in
  Format.printf "@.== universal stack over register consensus, solo ==@.";
  Format.printf "responses: %d   linearizable: %b@."
    (List.length (History.responses_of solo.Run_report.history 1))
    (Stack_lin.check solo.Run_report.history);

  (* 3. ... but lockstep ties the log's first slot forever: the FLP/CIL
     impossibility reaches every object built from registers. *)
  let lockstep : (Stack_type.invocation, Stack_type.response) Driver.t =
   fun view ->
    let next = if view.Driver.steps 1 <= view.Driver.steps 2 then 1 else 2 in
    match view.Driver.status next with
    | Runtime.Ready -> Driver.Schedule next
    | Runtime.Idle -> Driver.Invoke (next, Stack_type.Push next)
    | Runtime.Crashed -> Driver.Stop
  in
  let tied =
    Runner.run ~n:2
      ~factory:(Universal.factory ~tp:stack_tp ~consensus:`Registers ())
      ~driver:lockstep ~max_steps:1500 ()
  in
  Format.printf "@.== universal stack over register consensus, lockstep ==@.";
  Format.printf "responses after %d fair steps: %d   (1,2)-freedom: %b@."
    tied.Run_report.total_time
    (History.count Event.is_response tied.Run_report.history)
    (Freedom.holds
       ~good:(fun (_ : Stack_type.response) -> true)
       tied (Freedom.make ~l:1 ~k:2));
  Format.printf
    "@.Two pushers, forever tied: no wait-free universal objects from@.";
  Format.printf "registers - Corollary 4.10 visiting a stack.@."
