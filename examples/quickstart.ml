(* Quickstart: build a consensus object, run it under three schedulers,
   and check safety and liveness on the resulting runs.

   Run with:  dune exec examples/quickstart.exe *)

open Slx_history
open Slx_sim
open Slx_liveness
open Slx_consensus

let propose_own = Driver.forever (fun p -> Consensus_type.Propose (p - 1))
let good (_ : Consensus_type.response) = true

let describe name r =
  let decisions = Consensus_adversary.decisions r.Run_report.history in
  Format.printf "@.== %s ==@." name;
  Format.printf "history (first events): %a@."
    Consensus_type.pp_history
    (History.prefix r.Run_report.history
       (min 8 (History.length r.Run_report.history)));
  Format.printf "decisions: %s@."
    (if decisions = [] then "none"
     else
       String.concat ", "
         (List.map
            (fun (p, v) -> Printf.sprintf "p%d -> %d" p v)
            decisions));
  Format.printf "agreement and validity: %b@."
    (Consensus_safety.check r.Run_report.history);
  Format.printf "bounded-fair: %b@." (Fairness.is_bounded_fair r);
  List.iter
    (fun (l, k) ->
      let f = Freedom.make ~l ~k in
      Format.printf "%a: %b@." Freedom.pp f (Freedom.holds ~good r f))
    [ (1, 1); (1, 2); (2, 2) ]

let () =
  let factory = Register_consensus.factory () in

  (* 1. A solo run: process 1 alone (process 2 crashed at time 0).
     Obstruction-freedom — (1,1)-freedom — demands it decides. *)
  let solo =
    Runner.run ~n:2 ~factory
      ~driver:
        (Driver.with_crashes [ (0, 2) ] (Driver.solo 1 ~workload:propose_own))
      ~max_steps:400 ()
  in
  describe "solo schedule (p2 crashed)" solo;

  (* 2. A random fair schedule: decisions almost surely happen. *)
  let random =
    Runner.run ~n:2 ~factory
      ~driver:(Driver.random ~seed:42 ~workload:propose_own ())
      ~max_steps:400 ()
  in
  describe "random schedule" random;

  (* 3. The adversarial lockstep schedule of the consensus
     impossibility: nobody ever decides, yet safety is never
     violated — the safety-liveness trade-off in action. *)
  let lockstep =
    Consensus_adversary.run_lockstep ~factory ~max_steps:1000
  in
  describe "lockstep adversary" lockstep;

  Format.printf
    "@.The lockstep run is fair and safe but violates (1,2)-freedom:@.";
  Format.printf
    "wait-freedom excludes agreement and validity for register consensus.@."
