(* Transactional memory progress, per Sections 4.1 and 5: the paper's
   Algorithm I(1,2) under a fair scheduler, under the local-progress
   adversary, and under the Section 5.3 three-way adversary.

   Run with:  dune exec examples/tm_progress.exe *)

open Slx_sim
open Slx_liveness
open Slx_tm

let pp_commits fmt h =
  List.iter
    (fun (p, c) -> Format.fprintf fmt "p%d: %d commits  " p c)
    (Tm_adversary.commits h)

let report name r =
  Format.printf "@.== %s ==@." name;
  Format.printf "%a@." pp_commits r.Run_report.history;
  Format.printf "final-state opacity: %b   S': %b@."
    (Opacity.check_final r.Run_report.history)
    (S_prime.check_final r.Run_report.history);
  List.iter
    (fun (l, k) ->
      let f = Freedom.make ~l ~k in
      Format.printf "%a: %b@." Freedom.pp f (Freedom.holds ~good:Tm_type.good r f))
    [ (1, 2); (2, 2); (1, 3) ];
  Format.printf "local progress: %b@."
    (Live_property.holds
       (Live_property.local_progress ~good:Tm_type.good ~n:r.Run_report.n)
       r)

let () =
  (* 1. A fair random schedule over two processes: commits flow. *)
  let fair =
    Runner.run ~n:2 ~factory:(I12.factory ~vars:1)
      ~driver:(Tm_workload.random ~seed:7 ())
      ~max_steps:400 ()
  in
  report "I(1,2), fair random schedule, n = 2" fair;

  (* 2. The Section 4.1 adversary: p2 commits forever, p1 never does.
     Local progress fails; (1,2)-freedom survives. *)
  let adversarial =
    Tm_adversary.run_local_progress ~factory:(I12.factory ~vars:1)
      ~max_steps:800 ()
  in
  report "I(1,2) vs the local-progress adversary" adversarial;

  (* 3. The Section 5.3 adversary: three same-index concurrent
     transactions trip the timestamp rule of S' every round — nobody
     ever commits, so even (1,3)-freedom fails. *)
  let three_way =
    Tm_adversary.run_three_way ~factory:(I12.factory ~vars:1) ~max_steps:800
  in
  report "I(1,2) vs the three-way adversary (n = 3)" three_way;

  (* 4. AGP has no timestamp rule: the same three-way adversary loses
     immediately. *)
  let agp =
    Tm_adversary.run_three_way ~factory:(Agp_tm.factory ~vars:1) ~max_steps:800
  in
  report "AGP vs the three-way adversary (n = 3)" agp;
  Format.printf
    "@.AGP commits under the three-way adversary but violates S''s \
     timestamp rule: %b@."
    (S_prime.timestamp_rule agp.Run_report.history)
