(* The exclusion game of Section 4, played live: the tie-maintaining
   adversary searches for a schedule that keeps two proposers undecided
   forever against register-based consensus, then loses against
   CAS-based consensus.

   Run with:  dune exec examples/consensus_game.exe *)

open Slx_sim
open Slx_liveness
open Slx_consensus
open Slx_core

let good (_ : Consensus_type.response) = true

let play name factory =
  Format.printf "@.== tie-maintaining adversary vs %s ==@." name;
  match Consensus_adversary.tie_attack ~factory ~steps:50 () with
  | Consensus_adversary.Defeated r ->
      Format.printf "adversary WINS: %d fair steps, no decision.@."
        r.Run_report.total_time;
      Format.printf "run still satisfies agreement and validity: %b@."
        (Consensus_safety.check r.Run_report.history);
      Format.printf "(1,2)-freedom on the run: %b@."
        (Freedom.holds ~good r (Freedom.make ~l:1 ~k:2))
  | Consensus_adversary.Lost r ->
      Format.printf "adversary LOSES: a decision was forced.@.";
      Format.printf "decisions: %s@."
        (String.concat ", "
           (List.map
              (fun (p, v) -> Printf.sprintf "p%d -> %d" p v)
              (Consensus_adversary.decisions r.Run_report.history)))

let () =
  play "register consensus (commit-adopt)" (Register_consensus.factory ());
  play "CAS consensus" (Cas_consensus.factory ());

  (* The same result through the Exclusion game API. *)
  Format.printf "@.== Exclusion.play: lockstep vs register consensus ==@.";
  let v =
    Exclusion.play ~n:2
      ~factory:(Register_consensus.factory ())
      ~adversary:(Consensus_adversary.lockstep ())
      ~safety:Consensus_safety.property
      ~liveness:(Live_property.of_freedom ~good (Freedom.make ~l:1 ~k:2))
      ~max_steps:1500
  in
  Format.printf "fair=%b safe=%b liveness=%b -> adversary wins: %b@."
    v.Exclusion.fair v.Exclusion.safety_holds v.Exclusion.liveness_holds
    (Exclusion.adversary_wins v)
