(* End-to-end tour of the public API with a user-defined object type:
   a bounded counter (increments fail above a cap).

   Shows how to: define an Object_type, implement it over base
   objects, drive it with schedulers, check linearizability, and
   evaluate (l,k)-freedom.

   Run with:  dune exec examples/custom_object.exe *)

open Slx_history
open Slx_sim
open Slx_base_objects
open Slx_liveness

(* 1. The object type: a counter bounded by [cap]. *)
module Bounded_counter = struct
  type state = int
  type invocation = Increment | Get
  type response = New_value of int | Full | Value of int

  let name = "bounded-counter"
  let cap = 5
  let initial = 0

  let seq inv st =
    match inv with
    | Increment -> if st < cap then [ (st + 1, New_value (st + 1)) ] else [ (st, Full) ]
    | Get -> [ (st, Value st) ]

  let good = function
    | New_value _ | Value _ -> true
    | Full -> false (* hitting the cap is not progress *)

  let equal_state = Int.equal
  let equal_invocation (a : invocation) b = a = b
  let equal_response (a : response) b = a = b
  let pp_state = Format.pp_print_int

  let pp_invocation fmt = function
    | Increment -> Format.pp_print_string fmt "inc"
    | Get -> Format.pp_print_string fmt "get"

  let pp_response fmt = function
    | New_value v -> Format.fprintf fmt "new(%d)" v
    | Full -> Format.pp_print_string fmt "full"
    | Value v -> Format.fprintf fmt "val(%d)" v
end

(* 2. A lock-free implementation from compare-and-swap. *)
let factory () : (Bounded_counter.invocation, Bounded_counter.response) Runner.factory =
 fun ~n:_ ->
  let cell = Cas.make 0 in
  fun ~proc:_ inv ->
    match inv with
    | Bounded_counter.Get -> Bounded_counter.Value (Cas.read cell)
    | Bounded_counter.Increment ->
        let rec attempt () =
          let v = Cas.read cell in
          if v >= Bounded_counter.cap then Bounded_counter.Full
          else if Cas.compare_and_swap cell ~expected:v ~desired:(v + 1) then
            Bounded_counter.New_value (v + 1)
          else attempt ()
        in
        attempt ()

(* 3. The linearizability checker, instantiated for free. *)
module Lin = Slx_safety.Linearizability.Make (Bounded_counter)

let () =
  let workload =
    Driver.forever (fun p -> if p = 1 then Bounded_counter.Increment else Bounded_counter.Get)
  in
  let r =
    Runner.run ~n:3 ~factory:(factory ())
      ~driver:(Driver.random ~seed:11 ~workload ())
      ~max_steps:120 ()
  in
  Format.printf "history: %a@."
    (History.pp ~pp_inv:Bounded_counter.pp_invocation
       ~pp_res:Bounded_counter.pp_response)
    (History.prefix r.Run_report.history
       (min 14 (History.length r.Run_report.history)));
  Format.printf "linearizable: %b@." (Lin.check r.Run_report.history);
  Format.printf "bounded-fair: %b@." (Fairness.is_bounded_fair r);
  List.iter
    (fun (l, k) ->
      let f = Freedom.make ~l ~k in
      Format.printf "%a: %b@." Freedom.pp f
        (Freedom.holds ~good:Bounded_counter.good r f))
    [ (1, 3); (3, 3) ];
  Format.printf
    "Once the counter is full, increments return Full - responses that@.";
  Format.printf
    "are not 'good': like TM aborts, they do not count as progress.@."
