(* Exhaustive bounded verification: check a safety property on EVERY
   schedule of a small instance, not a random sample — and watch the
   explorer find a concrete counterexample for a broken implementation.

   Run with:  dune exec examples/exhaustive_check.exe *)

open Slx_consensus
open Slx_core

let one_proposal =
  Explore.workload_invoke
    (Slx_sim.Driver.n_times 1 (fun p _ -> Consensus_type.Propose (p - 1)))

let verify name factory ~depth ~max_crashes =
  Printf.printf "== %s (depth %d, up to %d crashes) ==\n" name depth max_crashes;
  match
    Explore.forall_schedules ~n:2 ~factory ~invoke:one_proposal ~depth
      ~max_crashes
      ~check:(fun r -> Consensus_safety.check r.Slx_sim.Run_report.history)
      ()
  with
  | Explore.Ok runs ->
      Printf.printf "agreement and validity hold on ALL %d schedules\n\n" runs
  | Explore.Counterexample r ->
      Format.printf "VIOLATION found:@.  %a@.@." Consensus_type.pp_history
        r.Slx_sim.Run_report.history

let () =
  verify "CAS consensus"
    (fun () -> Cas_consensus.factory ())
    ~depth:10 ~max_crashes:1;
  verify "register consensus (commit-adopt)"
    (fun () -> Register_consensus.factory ())
    ~depth:9 ~max_crashes:0;
  verify "the selfish foil (decides its own value)"
    (fun () -> Selfish_consensus.factory ())
    ~depth:6 ~max_crashes:0;
  print_endline
    "The paper's safety claims are universally quantified; on small\n\
     instances the schedule tree is finite, so we can check them all."
