(* The (l,k)-freedom plane of Figure 1, regenerated experimentally for
   consensus (1a), TM opacity (1b), and the Section 5.3 property S'.

   Run with:  dune exec examples/property_lattice.exe *)

open Slx_liveness
open Slx_core

let pp_points points =
  String.concat ", " (List.map (Format.asprintf "%a" Freedom.pp) points)

let show grid =
  print_string (Figure1.render grid);
  Printf.printf "strongest not excluding: %s\n"
    (pp_points (Figure1.strongest_not_excluded grid));
  Printf.printf "weakest excluding:       %s\n"
    (pp_points (Figure1.weakest_excluded grid));
  Printf.printf "(from %d adversary runs, %d positive runs)\n\n"
    grid.Figure1.adversary_runs grid.Figure1.positive_runs

let () =
  show (Figure1.consensus ~n:3 ());
  show (Figure1.tm ~n:3 ());
  show (Figure1.s_prime ~n:3 ());
  show (Figure1.mutex ~n:3 ());
  print_endline
    "Note the S' grid: its weakest-excluding set has TWO incomparable\n\
     points, (2,2) and (1,3) - the Section 5.3 limitation of\n\
     (l,k)-freedom: no weakest excluding property exists for S'.\n\
     And the mutex grid is all white: exclusion is object-specific."
