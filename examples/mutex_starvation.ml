(* Locks have the same trade-off: Section 3.2 of the paper names
   starvation-freedom as the strongest liveness requirement (Lmax) for
   lock-based implementations.  The test-and-set spin lock keeps its
   safety property (mutual exclusion) under every schedule, but a
   scheduler that grants the loser's attempts only while the lock is
   held starves it forever.

   Run with:  dune exec examples/mutex_starvation.exe *)

open Slx_sim
open Slx_liveness
open Slx_objects

let describe name r =
  Format.printf "@.== %s ==@." name;
  List.iter
    (fun (p, c) -> Format.printf "p%d acquired the lock %d times@." p c)
    (Mutex.acquisitions r.Run_report.history);
  Format.printf "mutual exclusion: %b   bounded-fair: %b@."
    (Mutex.mutual_exclusion r.Run_report.history)
    (Fairness.is_bounded_fair r);
  List.iter
    (fun (l, k) ->
      let f = Freedom.make ~l ~k in
      Format.printf "%a: %b@." Freedom.pp f (Freedom.holds ~good:Mutex.good r f))
    [ (1, 2); (2, 2) ]

let () =
  (* 1. A fair random scheduler: both processes keep acquiring. *)
  let fair =
    Runner.run ~n:2 ~factory:(Mutex.tas_factory ())
      ~driver:(Mutex.random_workload ~seed:3 ())
      ~max_steps:400 ()
  in
  describe "TAS lock, fair random scheduler" fair;

  (* 2. The starvation scheduler: p1's acquire attempts are granted
     only while p2 holds the lock — they all fail, forever. *)
  let starved = Mutex.run_starvation ~factory:(Mutex.tas_factory ()) ~max_steps:800 in
  describe "TAS lock, starvation scheduler" starved;

  Format.printf
    "@.The starved run is fair and safe but violates (2,2)-freedom:@.";
  Format.printf
    "starvation-freedom (the lock Lmax) excludes nothing less than a@.";
  Format.printf "stronger lock - the mutex face of safety-liveness exclusion.@."
